package wire

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"math/big"
	"reflect"
	"testing"

	"repro/internal/bn256"
	"repro/internal/core"
	"repro/internal/prf"
)

// fixedReader yields a repeating deterministic byte pattern, pinning the key
// material the AcceptAuditData golden vector is built from.
type fixedReader struct{ ctr byte }

func (r *fixedReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = r.ctr
		r.ctr = r.ctr*31 + 7
	}
	return len(p), nil
}

// testChallenge is the deterministic challenge every vector uses.
func testChallenge() *core.Challenge {
	ch := &core.Challenge{K: 300}
	for i := 0; i < prf.SeedSize; i++ {
		ch.C1[i] = byte(i)
		ch.C2[i] = byte(0x10 + i)
		ch.R[i] = byte(0x20 + i)
	}
	return ch
}

// goldenFrame encodes a full frame (header + payload) as hex.
func goldenFrame(t *testing.T, typ Type, id uint64, payload []byte, err error) string {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Frame{Type: typ, ID: id, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	return hex.EncodeToString(buf.Bytes())
}

// TestGoldenVectors pins the full frame encoding of every message type.
// These hex strings are the wire format: a change here is a protocol break
// and must come with a Version bump (see the package comment).
func TestGoldenVectors(t *testing.T) {
	hello, errHello := (&Hello{Node: "sp-00"}).Marshal()
	accepted, errAccepted := (&Accepted{Contract: "audit:o:p:f"}).Marshal()
	chal, errChal := (&Challenge{Contract: "audit:o:p:f", Chal: testChallenge()}).Marshal()
	proof, errProof := (&Proof{Contract: "audit:o:p:f", Proof: []byte{0xAA, 0xBB, 0xCC}}).Marshal()
	wireErr, errErr := (&Error{Code: CodeNoAuditState, Message: "no audit state"}).Marshal()
	ping, errPing := (&Ping{Nonce: 0x0102030405060708}).Marshal()
	shareReq, errShareReq := (&ShareRequest{Key: "f/share/0"}).Marshal()
	shareData, errShareData := (&ShareData{Key: "f/share/0", Share: []byte{0xDE, 0xAD, 0xBE, 0xEF}}).Marshal()

	vectors := []struct {
		name string
		got  string
		want string
	}{
		{"Hello", goldenFrame(t, MsgHello, 1, hello, errHello),
			"0000001102010000000000000001000573702d3030"},
		{"Accepted", goldenFrame(t, MsgAccepted, 2, accepted, errAccepted),
			"0000001702030000000000000002000b61756469743a6f3a703a66"},
		{"Challenge", goldenFrame(t, MsgChallenge, 3, chal, errChal),
			"0000004b02040000000000000003000b61756469743a6f3a703a66" +
				"000102030405060708090a0b0c0d0e0f" +
				"101112131415161718191a1b1c1d1e1f" +
				"202122232425262728292a2b2c2d2e2f" +
				"0000012c"},
		{"Proof", goldenFrame(t, MsgProof, 4, proof, errProof),
			"0000001e02050000000000000004000b61756469743a6f3a703a6600000003aabbcc"},
		{"Error", goldenFrame(t, MsgError, 5, wireErr, errErr),
			"0000001e0206000000000000000500000003000e6e6f206175646974207374617465"},
		{"Ping", goldenFrame(t, MsgPing, 6, ping, errPing),
			"0000001202070000000000000006" + "0102030405060708"},
		{"ShareRequest", goldenFrame(t, MsgShareRequest, 7, shareReq, errShareReq),
			"000000150208" + "0000000000000007" + "0009662f73686172652f30"},
		{"ShareData", goldenFrame(t, MsgShareData, 8, shareData, errShareData),
			"0000001d0209" + "0000000000000008" + "0009662f73686172652f30" + "00000004deadbeef"},
	}
	for _, v := range vectors {
		if v.got != v.want {
			t.Errorf("%s golden mismatch:\n got  %s\n want %s", v.name, v.got, v.want)
		}
	}
}

// TestGoldenAcceptAuditData pins the bulk transfer's format via a digest:
// the payload is megabytes-scale in production, so the vector is the
// SHA-256 of a deterministically keyed small instance.
func TestGoldenAcceptAuditData(t *testing.T) {
	rng := &fixedReader{}
	sk, err := core.KeyGen(2, rng)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("golden-vector file contents 0123456789")
	ef, err := core.EncodeFile(data, 2)
	if err != nil {
		t.Fatal(err)
	}
	auths := make([]*core.Authenticator, ef.NumChunks())
	for i := range auths {
		auths[i] = &core.Authenticator{Index: i, Sigma: new(bn256.G1).ScalarBaseMult(big.NewInt(int64(i + 3)))}
	}
	msg := &AcceptAuditData{
		Contract:   "audit:owner:sp-00:file",
		SampleSize: 8,
		PublicKey:  sk.Pub,
		File:       ef,
		Auths:      auths,
	}
	payload, err := msg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	digest := sha256.Sum256(payload)
	const want = "320cb98dfefaf6756c40cec5b82350e4c1a3336cd6c1f5f371887464ec422262"
	if got := hex.EncodeToString(digest[:]); got != want {
		t.Errorf("AcceptAuditData digest mismatch:\n got  %s (payload %d bytes)\n want %s", got, len(payload), want)
	}

	// And the payload must round-trip losslessly.
	back, err := UnmarshalAcceptAuditData(payload)
	if err != nil {
		t.Fatal(err)
	}
	if back.Contract != msg.Contract || back.SampleSize != msg.SampleSize {
		t.Fatalf("header mismatch: %+v", back)
	}
	if !bytes.Equal(back.File.Decode(), data) {
		t.Fatal("file did not survive the round trip")
	}
	if len(back.Auths) != len(auths) || !back.Auths[0].Sigma.Equal(auths[0].Sigma) {
		t.Fatal("authenticators did not survive the round trip")
	}
	pkGot, err := back.PublicKey.Marshal(true)
	if err != nil {
		t.Fatal(err)
	}
	pkWant, err := msg.PublicKey.Marshal(true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pkGot, pkWant) {
		t.Fatal("public key did not survive the round trip")
	}
}

func TestMessageRoundTrips(t *testing.T) {
	t.Run("Hello", func(t *testing.T) {
		b, err := (&Hello{Node: "node-x"}).Marshal()
		if err != nil {
			t.Fatal(err)
		}
		got, err := UnmarshalHello(b)
		if err != nil || got.Node != "node-x" {
			t.Fatalf("got %+v, %v", got, err)
		}
	})
	t.Run("Challenge", func(t *testing.T) {
		want := &Challenge{Contract: "c", Chal: testChallenge()}
		b, err := want.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		got, err := UnmarshalChallenge(b)
		if err != nil {
			t.Fatal(err)
		}
		if got.Contract != want.Contract || !reflect.DeepEqual(got.Chal, want.Chal) {
			t.Fatalf("got %+v", got)
		}
	})
	t.Run("Error", func(t *testing.T) {
		b, err := (&Error{Code: CodeInternal, Message: "boom"}).Marshal()
		if err != nil {
			t.Fatal(err)
		}
		got, err := UnmarshalError(b)
		if err != nil || got.Code != CodeInternal || got.Message != "boom" {
			t.Fatalf("got %+v, %v", got, err)
		}
		if got.RetryAfter != 0 {
			t.Fatalf("legacy error grew a retry-after hint: %d", got.RetryAfter)
		}
	})
	t.Run("ErrorRetryAfter", func(t *testing.T) {
		want := &Error{Code: CodeOverloaded, Message: "at capacity", RetryAfter: 12}
		b, err := want.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		got, err := UnmarshalError(b)
		if err != nil || !reflect.DeepEqual(got, want) {
			t.Fatalf("got %+v, %v", got, err)
		}
		// The hint is a fixed 4-byte trailer: any other trailing length is a
		// framing error, not silently ignored bytes.
		if _, err := UnmarshalError(append(b, 0)); err == nil {
			t.Fatal("accepted error payload with 5 trailing bytes")
		}
		// Legacy encoders omit the trailer entirely; the zero hint must not
		// change the bytes they produce.
		legacy, err := (&Error{Code: CodeOverloaded, Message: "at capacity"}).Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if len(legacy) != len(b)-4 {
			t.Fatalf("zero retry-after changed the encoding: %d vs %d bytes", len(legacy), len(b))
		}
	})
	t.Run("Proof", func(t *testing.T) {
		b, err := (&Proof{Contract: "c", Proof: bytes.Repeat([]byte{7}, 288)}).Marshal()
		if err != nil {
			t.Fatal(err)
		}
		got, err := UnmarshalProof(b)
		if err != nil || got.Contract != "c" || len(got.Proof) != 288 {
			t.Fatalf("got %+v, %v", got, err)
		}
	})
	t.Run("Ping", func(t *testing.T) {
		b, err := (&Ping{Nonce: 99}).Marshal()
		if err != nil {
			t.Fatal(err)
		}
		got, err := UnmarshalPing(b)
		if err != nil || got.Nonce != 99 {
			t.Fatalf("got %+v, %v", got, err)
		}
	})
	t.Run("ShareRequest", func(t *testing.T) {
		b, err := (&ShareRequest{Key: "archive/share/3"}).Marshal()
		if err != nil {
			t.Fatal(err)
		}
		got, err := UnmarshalShareRequest(b)
		if err != nil || got.Key != "archive/share/3" {
			t.Fatalf("got %+v, %v", got, err)
		}
	})
	t.Run("ShareData", func(t *testing.T) {
		want := &ShareData{Key: "archive/share/3", Share: bytes.Repeat([]byte{0x5A}, 4096)}
		b, err := want.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		got, err := UnmarshalShareData(b)
		if err != nil || got.Key != want.Key || !bytes.Equal(got.Share, want.Share) {
			t.Fatalf("got %+v, %v", got, err)
		}
	})
	t.Run("ShareDataEmpty", func(t *testing.T) {
		// A zero-length share is a legal (if useless) object; the encoding
		// must distinguish it from a missing blob.
		b, err := (&ShareData{Key: "k"}).Marshal()
		if err != nil {
			t.Fatal(err)
		}
		got, err := UnmarshalShareData(b)
		if err != nil || got.Key != "k" || len(got.Share) != 0 {
			t.Fatalf("got %+v, %v", got, err)
		}
	})
}

func TestMessageRejectsTrailingBytes(t *testing.T) {
	hello, err := (&Hello{Node: "n"}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalHello(append(hello, 0)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("trailing byte accepted: %v", err)
	}
	ping, err := (&Ping{Nonce: 1}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalPing(append(ping, 0)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("trailing byte accepted: %v", err)
	}
	req, err := (&ShareRequest{Key: "k"}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalShareRequest(append(req, 0)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("trailing byte accepted: %v", err)
	}
	sd, err := (&ShareData{Key: "k", Share: []byte{1}}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalShareData(append(sd, 0)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("trailing byte accepted: %v", err)
	}
}

// TestChallengeCarriesK pins the satellite fix this package exists for: the
// wire challenge is self-contained, k included, unlike the 48-byte on-chain
// form.
func TestChallengeCarriesK(t *testing.T) {
	ch := testChallenge()
	onChain := ch.Marshal()
	if len(onChain) != 48 {
		t.Fatalf("on-chain challenge is %d bytes, want 48", len(onChain))
	}
	wire, err := ch.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != core.ChallengeBinarySize {
		t.Fatalf("wire challenge is %d bytes, want %d", len(wire), core.ChallengeBinarySize)
	}
	back, err := core.UnmarshalChallengeBinary(wire)
	if err != nil {
		t.Fatal(err)
	}
	if back.K != ch.K {
		t.Fatalf("k did not survive: got %d, want %d", back.K, ch.K)
	}
	if !reflect.DeepEqual(back, ch) {
		t.Fatalf("challenge mismatch: %+v vs %+v", back, ch)
	}
}
