package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

// FuzzReadFrame feeds arbitrary bytes to the frame decoder. The contract
// under fuzz: never panic, never allocate beyond MaxPayload for a single
// frame, and classify every malformed input as an error (clean EOF only at
// a frame boundary with no bytes consumed).
func FuzzReadFrame(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteFrame(&seed, &Frame{Type: MsgHello, ID: 1, Payload: []byte{0, 0}})
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	// Oversized declared length with no body behind it.
	huge := binary.BigEndian.AppendUint32(nil, headerRest+MaxPayload+1)
	f.Add(huge)
	f.Add(bytes.Repeat([]byte{0xA5}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		fr, err := ReadFrame(r)
		if err != nil {
			return
		}
		// A successfully decoded frame must re-encode to the exact bytes
		// consumed (canonical framing).
		consumed := len(data) - r.Len()
		var out bytes.Buffer
		if err := WriteFrame(&out, fr); err != nil {
			t.Fatalf("re-encode of decoded frame failed: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data[:consumed]) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", data[:consumed], out.Bytes())
		}
	})
}

// FuzzUnmarshalMessages drives every payload decoder with arbitrary bytes:
// none may panic, and any accepted value must re-marshal canonically.
func FuzzUnmarshalMessages(f *testing.F) {
	hello, _ := (&Hello{Node: "sp"}).Marshal()
	chal, _ := (&Challenge{Contract: "c", Chal: testChallenge()}).Marshal()
	proof, _ := (&Proof{Contract: "c", Proof: []byte{1, 2, 3}}).Marshal()
	errMsg, _ := (&Error{Code: 1, Message: "m"}).Marshal()
	shareReq, _ := (&ShareRequest{Key: "f/share/0"}).Marshal()
	shareData, _ := (&ShareData{Key: "f/share/0", Share: []byte{4, 5, 6}}).Marshal()
	for _, s := range [][]byte{hello, chal, proof, errMsg, shareReq, shareData, {}, bytes.Repeat([]byte{0xFF}, 80)} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if m, err := UnmarshalHello(data); err == nil {
			if out, err := m.Marshal(); err != nil || !bytes.Equal(out, data) {
				t.Fatalf("hello not canonical: %x vs %x (%v)", data, out, err)
			}
		}
		if m, err := UnmarshalAccepted(data); err == nil {
			if out, err := m.Marshal(); err != nil || !bytes.Equal(out, data) {
				t.Fatalf("accepted not canonical: %x vs %x (%v)", data, out, err)
			}
		}
		if m, err := UnmarshalChallenge(data); err == nil {
			if out, err := m.Marshal(); err != nil || !bytes.Equal(out, data) {
				t.Fatalf("challenge not canonical: %x vs %x (%v)", data, out, err)
			}
		}
		if m, err := UnmarshalProof(data); err == nil {
			if out, err := m.Marshal(); err != nil || !bytes.Equal(out, data) {
				t.Fatalf("proof not canonical: %x vs %x (%v)", data, out, err)
			}
		}
		if m, err := UnmarshalError(data); err == nil {
			if out, err := m.Marshal(); err != nil || !bytes.Equal(out, data) {
				t.Fatalf("error not canonical: %x vs %x (%v)", data, out, err)
			}
		}
		if m, err := UnmarshalPing(data); err == nil {
			if out, err := m.Marshal(); err != nil || !bytes.Equal(out, data) {
				t.Fatalf("ping not canonical: %x vs %x (%v)", data, out, err)
			}
		}
		if m, err := UnmarshalShareRequest(data); err == nil {
			if out, err := m.Marshal(); err != nil || !bytes.Equal(out, data) {
				t.Fatalf("share request not canonical: %x vs %x (%v)", data, out, err)
			}
		}
		if m, err := UnmarshalShareData(data); err == nil {
			if out, err := m.Marshal(); err != nil || !bytes.Equal(out, data) {
				t.Fatalf("share data not canonical: %x vs %x (%v)", data, out, err)
			}
		}
		// The bulk decoder must also never panic (its nested core decoders
		// validate dimensions before allocating).
		_, _ = UnmarshalAcceptAuditData(data)
	})
}

// TestReadFrameNoOverAllocation streams a frame that declares a huge length:
// the decoder must reject it without reading (or allocating) the body.
func TestReadFrameNoOverAllocation(t *testing.T) {
	hdr := binary.BigEndian.AppendUint32(nil, headerRest+MaxPayload+1)
	r := &countingReader{r: io.MultiReader(bytes.NewReader(hdr), neverEnding{})}
	_, err := ReadFrame(r)
	if err == nil {
		t.Fatal("oversized frame accepted")
	}
	if r.n > HeaderSize {
		t.Fatalf("decoder read %d bytes of an oversized frame, want <= %d", r.n, HeaderSize)
	}
}

type countingReader struct {
	r io.Reader
	n int
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += n
	return n, err
}

// neverEnding yields zeros forever.
type neverEnding struct{}

func (neverEnding) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 0
	}
	return len(p), nil
}
