package reputation

import (
	"errors"
	"testing"
)

func TestObserveAndRecord(t *testing.T) {
	l := NewLedger()
	l.Observe("sp-1", EventAuditPassed)
	l.Observe("sp-1", EventAuditPassed)
	l.Observe("sp-1", EventContractCompleted)

	r, err := l.Record("sp-1")
	if err != nil {
		t.Fatal(err)
	}
	if r.Age != 3 || r.Completed != 1 || r.Score != 12 {
		t.Fatalf("record = %+v", r)
	}
	if _, err := l.Record("ghost"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("err = %v", err)
	}
}

func TestTrustOrdering(t *testing.T) {
	l := NewLedger()
	// Established honest provider.
	for i := 0; i < 50; i++ {
		l.Observe("veteran", EventAuditPassed)
	}
	l.Observe("veteran", EventContractCompleted)

	// Young but clean.
	l.Observe("rookie", EventAuditPassed)

	// Slashed provider.
	for i := 0; i < 50; i++ {
		l.Observe("cheater", EventAuditPassed)
	}
	l.Observe("cheater", EventAuditFailed)

	tv, tr, tc := l.Trust("veteran"), l.Trust("rookie"), l.Trust("cheater")
	tn := l.Trust("nobody")

	if !(tv > tr && tr > tn) {
		t.Fatalf("ordering broken: veteran %.3f rookie %.3f nobody %.3f", tv, tr, tn)
	}
	if tc != 0 {
		t.Fatalf("slashed provider trust = %.3f, want 0 (hard cap)", tc)
	}
	if tn != sybilFloor {
		t.Fatalf("unknown trust = %.3f, want floor %.3f", tn, sybilFloor)
	}
}

func TestSlashDominatesHistory(t *testing.T) {
	// A long good history must not whitewash one slash.
	l := NewLedger()
	for i := 0; i < 1000; i++ {
		l.Observe("wolf", EventAuditPassed)
	}
	l.Observe("wolf", EventAuditFailed)
	for i := 0; i < 1000; i++ {
		l.Observe("wolf", EventAuditPassed)
	}
	if l.Trust("wolf") != 0 {
		t.Fatal("slashed identity regained trust")
	}
}

func TestRejectionDoSIsSelfDefeating(t *testing.T) {
	// The Section VI-A DoS: repeatedly rejecting after negotiation drives
	// the attacker's own trust to the floor, as the paper argues
	// ("good to none but worse to himself").
	l := NewLedger()
	l.Observe("griefer", EventAuditPassed)
	before := l.Trust("griefer")
	for i := 0; i < 5; i++ {
		l.Observe("griefer", EventRejectedAfterNegotiate)
	}
	after := l.Trust("griefer")
	if after >= before {
		t.Fatalf("rejections did not hurt: %.3f -> %.3f", before, after)
	}
}

func TestRank(t *testing.T) {
	l := NewLedger()
	for i := 0; i < 30; i++ {
		l.Observe("good", EventAuditPassed)
	}
	l.Observe("meh", EventAuditPassed)
	l.Observe("bad", EventAuditFailed)

	ranked := l.Rank([]string{"bad", "unknown-a", "good", "meh", "unknown-b"})
	if ranked[0] != "good" || ranked[1] != "meh" {
		t.Fatalf("ranked = %v", ranked)
	}
	// Equal-trust unknowns keep their input (DHT placement) order.
	if ranked[2] != "unknown-a" || ranked[3] != "unknown-b" {
		t.Fatalf("stable tie-break broken: %v", ranked)
	}
	if ranked[4] != "bad" {
		t.Fatalf("slashed not last: %v", ranked)
	}
}

func TestSybilResistance(t *testing.T) {
	l := NewLedger()
	for i := 0; i < 100; i++ {
		l.Observe("incumbent", EventAuditPassed)
	}
	n := l.SybilResistance("incumbent")
	if n <= 0 {
		t.Fatalf("sybil resistance = %d", n)
	}
	// A Sybil must do real, audited work to catch up: at least dozens of
	// passed audits (each of which costs real storage and deposits).
	if n < 20 {
		t.Fatalf("sybil catches up after only %d audits", n)
	}
	if got := l.SybilResistance("never-seen"); got <= 0 {
		t.Fatalf("resistance vs floor identity = %d", got)
	}
}

func TestRepairEvents(t *testing.T) {
	l := NewLedger()

	// Serving repairs earns credit on top of audit history.
	for i := 0; i < 10; i++ {
		l.Observe("helper", EventAuditPassed)
	}
	before := l.Trust("helper")
	l.Observe("helper", EventRepairServed)
	r, err := l.Record("helper")
	if err != nil {
		t.Fatal(err)
	}
	if r.Score != 12 {
		t.Fatalf("score = %v, want 10 passes + 2 repair credit", r.Score)
	}
	if l.Trust("helper") <= before {
		t.Fatalf("serving a repair did not raise trust: %.4f -> %.4f", before, l.Trust("helper"))
	}

	// Refusing repairs depresses ranking but must NOT slash: only the
	// contract-level audit convicts, and Trust hard-zeros on Slashed > 0.
	for i := 0; i < 10; i++ {
		l.Observe("hoarder", EventAuditPassed)
	}
	whole := l.Trust("hoarder")
	l.Observe("hoarder", EventRepairRefused)
	r, err = l.Record("hoarder")
	if err != nil {
		t.Fatal(err)
	}
	if r.Slashed != 0 {
		t.Fatalf("repair refusal counted as a slash: %+v", r)
	}
	if r.Score != -10 {
		t.Fatalf("score = %v, want 10 passes - 20 refusal penalty", r.Score)
	}
	if got := l.Trust("hoarder"); got >= whole || got <= 0 {
		t.Fatalf("refusal trust %.4f, want depressed but above zero (was %.4f)", got, whole)
	}

	// Ranking: a refuser sinks below clean peers but stays above a
	// convicted one.
	l.Observe("felon", EventAuditFailed)
	ranked := l.Rank([]string{"felon", "hoarder", "helper"})
	if ranked[0] != "helper" || ranked[1] != "hoarder" || ranked[2] != "felon" {
		t.Fatalf("ranked = %v", ranked)
	}
}
