// Package reputation implements the "robust reputation-based system" the
// paper invokes in Section VI-A as the countermeasure to residual
// misbehaviour that deposits alone cannot price in:
//
//   - a provider rejecting contracts after the owner paid the on-chain
//     storage cost of params/metadata (the initialization DoS), and
//   - Sybil identities farming engagement.
//
// The ledger is intentionally simple and auditable: every actor carries a
// score driven by on-chain events (passed audits up, slashes heavily down,
// pre-deposit rejections down), with an identity-age multiplier that makes
// freshly minted Sybil identities start at the bottom. Owners use the
// score to rank DHT provider candidates; providers use it to rank owners.
package reputation

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Event is a reputation-relevant on-chain observation.
type Event int

// Event kinds mirror the audit contract's outcomes.
const (
	// EventAuditPassed: a round verified; the provider behaved.
	EventAuditPassed Event = iota
	// EventAuditFailed: a proof failed verification; the provider was
	// slashed.
	EventAuditFailed
	// EventDeadlineMissed: the provider never responded.
	EventDeadlineMissed
	// EventRejectedAfterNegotiate: the provider bailed after the owner
	// paid the one-time on-chain key cost (the Section VI-A DoS).
	EventRejectedAfterNegotiate
	// EventContractCompleted: a full contract served to expiry.
	EventContractCompleted
	// EventForgedMetadata: an owner was caught planting bad
	// authenticators during provider-side validation.
	EventForgedMetadata
	// EventRepairServed: a holder served its share to a repair, helping
	// reconstruct a lost share.
	EventRepairServed
	// EventRepairRefused: a holder failed to serve a share a repair asked
	// for (unreachable, dropped, or corrupted). Negative but non-slashing:
	// the contract-level audit is what convicts; repair refusal alone only
	// depresses ranking.
	EventRepairRefused
)

// scoreDelta maps events to score adjustments.
func scoreDelta(e Event) float64 {
	switch e {
	case EventAuditPassed:
		return +1
	case EventAuditFailed:
		return -50
	case EventDeadlineMissed:
		return -30
	case EventRejectedAfterNegotiate:
		return -10
	case EventContractCompleted:
		return +10
	case EventForgedMetadata:
		return -50
	case EventRepairServed:
		return +2
	case EventRepairRefused:
		return -20
	default:
		return 0
	}
}

// Record is one identity's standing.
type Record struct {
	Name       string
	Score      float64
	Age        int // observed events; proxies identity age / activity
	Completed  int
	Slashed    int
	Rejections int
}

// Ledger tracks scores for all identities. Safe for concurrent use.
type Ledger struct {
	mu      sync.RWMutex
	records map[string]*Record
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{records: make(map[string]*Record)}
}

// ErrUnknown is returned for identities with no history.
var ErrUnknown = errors.New("reputation: unknown identity")

// Observe applies an event to an identity, creating it on first sight.
func (l *Ledger) Observe(name string, e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	r, ok := l.records[name]
	if !ok {
		r = &Record{Name: name}
		l.records[name] = r
	}
	r.Age++
	r.Score += scoreDelta(e)
	switch e {
	case EventContractCompleted:
		r.Completed++
	case EventAuditFailed, EventDeadlineMissed, EventForgedMetadata:
		r.Slashed++
	case EventRejectedAfterNegotiate:
		r.Rejections++
	}
}

// Record returns a copy of an identity's standing.
func (l *Ledger) Record(name string) (Record, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	r, ok := l.records[name]
	if !ok {
		return Record{}, fmt.Errorf("%w: %s", ErrUnknown, name)
	}
	return *r, nil
}

// Trust returns the effective trust of an identity in [0, 1]. Identities
// with no history score the Sybil floor; history is discounted by a
// logistic curve so one good contract cannot whitewash a slash.
func (l *Ledger) Trust(name string) float64 {
	l.mu.RLock()
	r, ok := l.records[name]
	l.mu.RUnlock()
	if !ok {
		return sybilFloor
	}
	// Slashed identities are hard-capped: deposits already priced one
	// offense; reputation makes repeat business unlikely.
	if r.Slashed > 0 {
		return 0
	}
	// Logistic on score, dampened by youth. Non-positive scores carry
	// no trust beyond the floor.
	s := r.Score
	if s <= 0 {
		return sybilFloor
	}
	base := s / (s + 20)
	youth := float64(r.Age) / float64(r.Age+5)
	t := sybilFloor + (1-sybilFloor)*base*youth
	if t > 1 {
		t = 1
	}
	return t
}

// sybilFloor is the trust of a never-seen identity: positive (newcomers
// must be able to join) but low enough that established providers win
// ranking ties, which is exactly what makes Sybil flooding uneconomical.
const sybilFloor = 0.05

// Rank orders candidate names by descending trust (stable for equal trust,
// preserving DHT placement order).
func (l *Ledger) Rank(candidates []string) []string {
	out := append([]string(nil), candidates...)
	sort.SliceStable(out, func(i, j int) bool {
		return l.Trust(out[i]) > l.Trust(out[j])
	})
	return out
}

// SybilResistance quantifies the cost of a Sybil flood: the number of
// passed audits a fresh identity needs before its trust exceeds that of an
// established identity with the given record. It returns -1 if the target
// is unreachable (e.g. the established identity is at the cap).
func (l *Ledger) SybilResistance(established string) int {
	target := l.Trust(established)
	if target >= 1 {
		return -1
	}
	// Simulate a fresh identity accumulating passes.
	fresh := &Record{}
	for n := 1; n <= 10000; n++ {
		fresh.Age++
		fresh.Score += scoreDelta(EventAuditPassed)
		s := fresh.Score
		if s <= 0 {
			continue
		}
		base := s / (s + 20)
		youth := float64(fresh.Age) / float64(fresh.Age+5)
		if sybilFloor+(1-sybilFloor)*base*youth > target {
			return n
		}
	}
	return -1
}
