package dht

import (
	"fmt"
	"math"
	"testing"
)

func buildRing(t testing.TB, n int) *Ring {
	t.Helper()
	r := NewRing()
	for i := 0; i < n; i++ {
		if _, err := r.Join(fmt.Sprintf("provider-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestJoinLeave(t *testing.T) {
	r := buildRing(t, 10)
	if r.Size() != 10 {
		t.Fatalf("size = %d, want 10", r.Size())
	}
	nodes := r.Nodes()
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1].ID >= nodes[i].ID {
			t.Fatal("nodes not sorted")
		}
	}
	if !r.Leave(nodes[3].ID) {
		t.Fatal("leave failed")
	}
	if r.Leave(nodes[3].ID) {
		t.Fatal("double leave succeeded")
	}
	if r.Size() != 9 {
		t.Fatalf("size after leave = %d", r.Size())
	}
}

func TestJoinDuplicate(t *testing.T) {
	r := NewRing()
	if _, err := r.JoinWithID(42, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.JoinWithID(42, "b"); err == nil {
		t.Fatal("accepted duplicate ID")
	}
}

func TestSuccessorWraps(t *testing.T) {
	r := NewRing()
	r.JoinWithID(100, "a")
	r.JoinWithID(200, "b")
	n, err := r.Successor(150)
	if err != nil || n.ID != 200 {
		t.Fatalf("successor(150) = %v, want 200", n)
	}
	n, _ = r.Successor(201) // wraps to the smallest
	if n.ID != 100 {
		t.Fatalf("successor(201) = %v, want 100 (wrap)", n.ID)
	}
	n, _ = r.Successor(100) // exact hit
	if n.ID != 100 {
		t.Fatalf("successor(100) = %v, want 100", n.ID)
	}
}

func TestEmptyRingErrors(t *testing.T) {
	r := NewRing()
	if _, err := r.Successor(1); err == nil {
		t.Fatal("successor on empty ring succeeded")
	}
	if _, err := r.Providers(1, 1); err == nil {
		t.Fatal("providers on empty ring succeeded")
	}
}

func TestLookupFindsSuccessor(t *testing.T) {
	r := buildRing(t, 50)
	nodes := r.Nodes()
	for trial := 0; trial < 100; trial++ {
		key := HashString(fmt.Sprintf("key-%d", trial))
		want, _ := r.Successor(key)
		from := nodes[trial%len(nodes)]
		got, hops, err := r.Lookup(from, key)
		if err != nil {
			t.Fatal(err)
		}
		if got.ID != want.ID {
			t.Fatalf("lookup routed to %d, want %d", got.ID, want.ID)
		}
		if hops > IDBits {
			t.Fatalf("lookup took %d hops", hops)
		}
	}
}

func TestLookupHopsLogarithmic(t *testing.T) {
	// Average hops must be O(log N): for N=256, well under 16.
	r := buildRing(t, 256)
	nodes := r.Nodes()
	total := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		key := HashString(fmt.Sprintf("k%d", i))
		_, hops, err := r.Lookup(nodes[i%len(nodes)], key)
		if err != nil {
			t.Fatal(err)
		}
		total += hops
	}
	avg := float64(total) / trials
	if avg > 2*math.Log2(256) {
		t.Fatalf("average hops %.1f too high for 256 nodes", avg)
	}
}

func TestProvidersDistinct(t *testing.T) {
	r := buildRing(t, 20)
	provs, err := r.Providers(HashString("file-x"), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(provs) != 10 {
		t.Fatalf("got %d providers", len(provs))
	}
	seen := map[ID]bool{}
	for _, p := range provs {
		if seen[p.ID] {
			t.Fatal("duplicate provider")
		}
		seen[p.ID] = true
	}
	if _, err := r.Providers(HashString("x"), 21); err == nil {
		t.Fatal("accepted provider count above ring size")
	}
}

func TestProvidersDeterministic(t *testing.T) {
	r := buildRing(t, 12)
	a, _ := r.Providers(HashString("same-key"), 5)
	b, _ := r.Providers(HashString("same-key"), 5)
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatal("provider selection not deterministic")
		}
	}
}

func TestBetween(t *testing.T) {
	cases := []struct {
		a, b, x ID
		want    bool
	}{
		{10, 20, 15, true},
		{10, 20, 20, true},
		{10, 20, 10, false},
		{10, 20, 25, false},
		{20, 10, 25, true}, // wrapped
		{20, 10, 5, true},  // wrapped
		{20, 10, 15, false},
	}
	for _, c := range cases {
		if got := between(c.a, c.b, c.x); got != c.want {
			t.Fatalf("between(%d,%d,%d) = %v, want %v", c.a, c.b, c.x, got, c.want)
		}
	}
}
