package dht

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

func buildRing(t testing.TB, n int) *Ring {
	t.Helper()
	r := NewRing()
	for i := 0; i < n; i++ {
		if _, err := r.Join(fmt.Sprintf("provider-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestJoinLeave(t *testing.T) {
	r := buildRing(t, 10)
	if r.Size() != 10 {
		t.Fatalf("size = %d, want 10", r.Size())
	}
	nodes := r.Nodes()
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1].ID >= nodes[i].ID {
			t.Fatal("nodes not sorted")
		}
	}
	if !r.Leave(nodes[3].ID) {
		t.Fatal("leave failed")
	}
	if r.Leave(nodes[3].ID) {
		t.Fatal("double leave succeeded")
	}
	if r.Size() != 9 {
		t.Fatalf("size after leave = %d", r.Size())
	}
}

func TestJoinDuplicate(t *testing.T) {
	r := NewRing()
	if _, err := r.JoinWithID(42, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.JoinWithID(42, "b"); err == nil {
		t.Fatal("accepted duplicate ID")
	}
}

func TestSuccessorWraps(t *testing.T) {
	r := NewRing()
	r.JoinWithID(100, "a")
	r.JoinWithID(200, "b")
	n, err := r.Successor(150)
	if err != nil || n.ID != 200 {
		t.Fatalf("successor(150) = %v, want 200", n)
	}
	n, _ = r.Successor(201) // wraps to the smallest
	if n.ID != 100 {
		t.Fatalf("successor(201) = %v, want 100 (wrap)", n.ID)
	}
	n, _ = r.Successor(100) // exact hit
	if n.ID != 100 {
		t.Fatalf("successor(100) = %v, want 100", n.ID)
	}
}

func TestEmptyRingErrors(t *testing.T) {
	r := NewRing()
	if _, err := r.Successor(1); err == nil {
		t.Fatal("successor on empty ring succeeded")
	}
	if _, err := r.Providers(1, 1); err == nil {
		t.Fatal("providers on empty ring succeeded")
	}
}

func TestLookupFindsSuccessor(t *testing.T) {
	r := buildRing(t, 50)
	nodes := r.Nodes()
	for trial := 0; trial < 100; trial++ {
		key := HashString(fmt.Sprintf("key-%d", trial))
		want, _ := r.Successor(key)
		from := nodes[trial%len(nodes)]
		got, hops, err := r.Lookup(from, key)
		if err != nil {
			t.Fatal(err)
		}
		if got.ID != want.ID {
			t.Fatalf("lookup routed to %d, want %d", got.ID, want.ID)
		}
		if hops > IDBits {
			t.Fatalf("lookup took %d hops", hops)
		}
	}
}

func TestLookupHopsLogarithmic(t *testing.T) {
	// Average hops must be O(log N): for N=256, well under 16.
	r := buildRing(t, 256)
	nodes := r.Nodes()
	total := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		key := HashString(fmt.Sprintf("k%d", i))
		_, hops, err := r.Lookup(nodes[i%len(nodes)], key)
		if err != nil {
			t.Fatal(err)
		}
		total += hops
	}
	avg := float64(total) / trials
	if avg > 2*math.Log2(256) {
		t.Fatalf("average hops %.1f too high for 256 nodes", avg)
	}
}

func TestProvidersDistinct(t *testing.T) {
	r := buildRing(t, 20)
	provs, err := r.Providers(HashString("file-x"), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(provs) != 10 {
		t.Fatalf("got %d providers", len(provs))
	}
	seen := map[ID]bool{}
	for _, p := range provs {
		if seen[p.ID] {
			t.Fatal("duplicate provider")
		}
		seen[p.ID] = true
	}
	if _, err := r.Providers(HashString("x"), 21); err == nil {
		t.Fatal("accepted provider count above ring size")
	}
}

func TestProvidersDeterministic(t *testing.T) {
	r := buildRing(t, 12)
	a, _ := r.Providers(HashString("same-key"), 5)
	b, _ := r.Providers(HashString("same-key"), 5)
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatal("provider selection not deterministic")
		}
	}
}

func TestBetween(t *testing.T) {
	cases := []struct {
		a, b, x ID
		want    bool
	}{
		{10, 20, 15, true},
		{10, 20, 20, true},
		{10, 20, 10, false},
		{10, 20, 25, false},
		{20, 10, 25, true}, // wrapped
		{20, 10, 5, true},  // wrapped
		{20, 10, 15, false},
	}
	for _, c := range cases {
		if got := between(c.a, c.b, c.x); got != c.want {
			t.Fatalf("between(%d,%d,%d) = %v, want %v", c.a, c.b, c.x, got, c.want)
		}
	}
}

// TestRingConcurrentChurn hammers the overlay with concurrent joins,
// leaves, lookups and provider scans. Run under -race this pins the
// Ring's synchronization; functionally it asserts that every lookup
// observed during churn stays internally consistent (errors only on an
// empty ring, results always live ring positions) and that the final
// membership matches the surviving join set.
func TestRingConcurrentChurn(t *testing.T) {
	r := NewRing()
	// A stable base population so lookups always have somewhere to land.
	base := make([]*Node, 0, 16)
	for i := 0; i < 16; i++ {
		n, err := r.Join(fmt.Sprintf("base-%02d", i))
		if err != nil {
			t.Fatal(err)
		}
		base = append(base, n)
	}

	const (
		churners = 4
		readers  = 4
		rounds   = 200
	)
	var wg sync.WaitGroup
	errs := make(chan error, churners+readers)

	// Churners: each owns a disjoint name space and keeps joining and
	// leaving its nodes, so ring size oscillates under the readers.
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				addr := fmt.Sprintf("churn-%d-%d", c, i%8)
				n, err := r.Join(addr)
				if err != nil {
					errs <- fmt.Errorf("join %s: %w", addr, err)
					return
				}
				if !r.Leave(n.ID) {
					errs <- fmt.Errorf("leave %s: node vanished", addr)
					return
				}
			}
		}(c)
	}

	// Readers: lookups, successor scans and provider selections must stay
	// coherent while the membership moves underneath them.
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			from := base[g%len(base)]
			for i := 0; i < rounds; i++ {
				key := HashString(fmt.Sprintf("object-%d-%d", g, i))
				node, hops, err := r.Lookup(from, key)
				if err != nil {
					errs <- fmt.Errorf("lookup: %w", err)
					return
				}
				if node == nil || hops < 0 {
					errs <- fmt.Errorf("lookup returned node=%v hops=%d", node, hops)
					return
				}
				if _, err := r.Successor(key); err != nil {
					errs <- fmt.Errorf("successor: %w", err)
					return
				}
				// The base population alone guarantees 8 distinct
				// providers at any instant.
				provs, err := r.Providers(key, 8)
				if err != nil {
					errs <- fmt.Errorf("providers: %w", err)
					return
				}
				seen := make(map[ID]bool, len(provs))
				for _, p := range provs {
					if p == nil {
						errs <- fmt.Errorf("providers returned nil node")
						return
					}
					if seen[p.ID] {
						errs <- fmt.Errorf("providers returned duplicate node %d", p.ID)
						return
					}
					seen[p.ID] = true
				}
			}
		}(g)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Every churner left its nodes; only the base population remains.
	if r.Size() != len(base) {
		t.Fatalf("final ring size %d, want %d", r.Size(), len(base))
	}
	for _, n := range base {
		if got, err := r.Successor(n.ID); err != nil || got.ID != n.ID {
			t.Fatalf("base node %s missing after churn: got %v err %v", n.Addr, got, err)
		}
	}
}
