// Package dht implements an in-memory Chord-style distributed hash table
// (Stoica et al., the paper's reference [16]), the lookup/routing substrate
// of the decentralized storage architecture in Fig. 1: data owners locate
// storage-provider candidates by key, and chunk placement follows
// consistent hashing with configurable replication.
//
// The simulation is single-process but topology-faithful: nodes hold finger
// tables, lookups route greedily through fingers in O(log N) hops, and the
// hop counts are observable for experiments.
package dht

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// IDBits is the identifier-space width. 64 bits keeps IDs printable while
// preserving Chord's structure.
const IDBits = 64

// ID is a point on the Chord ring.
type ID uint64

// HashKey maps an arbitrary key to the ring.
func HashKey(key []byte) ID {
	h := sha256.Sum256(key)
	return ID(binary.BigEndian.Uint64(h[:8]))
}

// HashString maps a string key to the ring.
func HashString(key string) ID { return HashKey([]byte(key)) }

// between reports whether x lies in the half-open ring interval (a, b].
func between(a, b, x ID) bool {
	if a < b {
		return x > a && x <= b
	}
	return x > a || x <= b // wrapped interval
}

// Node is one DHT participant (a storage provider in the paper's setting).
type Node struct {
	ID      ID
	Addr    string // opaque endpoint label, e.g. "provider-17"
	fingers []ID   // finger[i] targets ID + 2^i (resolved lazily via the ring)
}

// Ring is the complete simulated overlay. All membership changes go through
// the Ring, which maintains the sorted node list and rebuilds finger tables.
type Ring struct {
	mu    sync.RWMutex
	nodes []*Node // sorted by ID
}

// NewRing returns an empty overlay.
func NewRing() *Ring { return &Ring{} }

var (
	// ErrEmptyRing is returned by lookups on an overlay with no nodes.
	ErrEmptyRing = errors.New("dht: ring has no nodes")
	// ErrDuplicateID is returned when a joining node collides.
	ErrDuplicateID = errors.New("dht: duplicate node id")
)

// Join adds a node with an ID derived from its address.
func (r *Ring) Join(addr string) (*Node, error) {
	return r.JoinWithID(HashString(addr), addr)
}

// JoinWithID adds a node at an explicit ring position.
func (r *Ring) JoinWithID(id ID, addr string) (*Node, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	idx := sort.Search(len(r.nodes), func(i int) bool { return r.nodes[i].ID >= id })
	if idx < len(r.nodes) && r.nodes[idx].ID == id {
		return nil, fmt.Errorf("%w: %d", ErrDuplicateID, id)
	}
	n := &Node{ID: id, Addr: addr}
	r.nodes = append(r.nodes, nil)
	copy(r.nodes[idx+1:], r.nodes[idx:])
	r.nodes[idx] = n
	r.rebuildFingers()
	return n, nil
}

// Leave removes a node (graceful departure or crash -- the overlay does not
// distinguish; stored data durability is the erasure code's job).
func (r *Ring) Leave(id ID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	idx := sort.Search(len(r.nodes), func(i int) bool { return r.nodes[i].ID >= id })
	if idx >= len(r.nodes) || r.nodes[idx].ID != id {
		return false
	}
	r.nodes = append(r.nodes[:idx], r.nodes[idx+1:]...)
	r.rebuildFingers()
	return true
}

// Size returns the node count.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// rebuildFingers recomputes every node's finger table. O(N log N * log N);
// fine at simulation scale and keeps lookups pure.
func (r *Ring) rebuildFingers() {
	for _, n := range r.nodes {
		n.fingers = n.fingers[:0]
		for i := 0; i < IDBits; i++ {
			n.fingers = append(n.fingers, n.ID+ID(1)<<uint(i))
		}
	}
}

// successorLocked returns the first node at or after id (wrapping).
func (r *Ring) successorLocked(id ID) *Node {
	idx := sort.Search(len(r.nodes), func(i int) bool { return r.nodes[i].ID >= id })
	if idx == len(r.nodes) {
		idx = 0
	}
	return r.nodes[idx]
}

// Successor returns the node responsible for key.
func (r *Ring) Successor(key ID) (*Node, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.nodes) == 0 {
		return nil, ErrEmptyRing
	}
	return r.successorLocked(key), nil
}

// Lookup routes from a starting node to the owner of key through finger
// tables, Chord-style, returning the responsible node and the hop count.
func (r *Ring) Lookup(from *Node, key ID) (*Node, int, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.nodes) == 0 {
		return nil, 0, ErrEmptyRing
	}
	target := r.successorLocked(key)
	cur := from
	hops := 0
	for cur.ID != target.ID {
		if hops > 2*IDBits {
			return nil, hops, errors.New("dht: routing did not converge")
		}
		// Greedy: the finger closest below the key.
		next := r.closestPrecedingLocked(cur, key)
		if next.ID == cur.ID {
			next = r.successorLocked(cur.ID + 1)
		}
		cur = next
		hops++
		if between(cur.ID, target.ID, key) || cur.ID == target.ID {
			return target, hops, nil
		}
	}
	return target, hops, nil
}

// closestPrecedingLocked finds the routing-table entry that most closely
// precedes key.
func (r *Ring) closestPrecedingLocked(n *Node, key ID) *Node {
	for i := len(n.fingers) - 1; i >= 0; i-- {
		f := r.successorLocked(n.fingers[i])
		if between(n.ID, key-1, f.ID) && f.ID != key {
			return f
		}
	}
	return n
}

// Providers returns the count distinct nodes responsible for key and its
// replicas: the successor plus following nodes on the ring, the standard
// replica-placement rule. This is how a data owner selects the storage
// providers for its erasure-coded shares.
func (r *Ring) Providers(key ID, count int) ([]*Node, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.nodes) == 0 {
		return nil, ErrEmptyRing
	}
	if count > len(r.nodes) {
		return nil, fmt.Errorf("dht: requested %d providers from a ring of %d", count, len(r.nodes))
	}
	out := make([]*Node, 0, count)
	idx := sort.Search(len(r.nodes), func(i int) bool { return r.nodes[i].ID >= key })
	for len(out) < count {
		out = append(out, r.nodes[idx%len(r.nodes)])
		idx++
	}
	return out, nil
}

// Nodes returns a snapshot of the membership, sorted by ID.
func (r *Ring) Nodes() []*Node {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Node, len(r.nodes))
	copy(out, r.nodes)
	return out
}
