// Package chain simulates the Ethereum-like blockchain the paper uses as
// its auditing backbone: accounts with balances, transactions with
// Istanbul-calibrated gas metering, sequential blocks with a gas limit and
// logical timestamps, escrow (deposit locking) for contract fairness, and
// an event log.
//
// It replaces the paper's private geth testnet with customized pre-compiled
// contracts (Section VII-A). Contract logic runs as native Go (mirroring
// the paper's own pre-compiled-opcode approach); the chain supplies the
// economics: every byte posted and every verification performed is charged
// gas, so the on-chain cost experiments (Figs. 4-6, 10) run against the
// same cost model Ethereum would apply.
package chain

import (
	"errors"
	"fmt"
	"math/big"
	"sort"
	"sync"
	"time"
)

// GasSchedule holds the gas constants, defaulting to Ethereum Istanbul
// (the fork current in Apr 2020, the paper's price snapshot).
type GasSchedule struct {
	TxBase          uint64 // intrinsic gas per transaction
	CalldataZero    uint64 // per zero byte of calldata
	CalldataNonZero uint64 // per non-zero byte of calldata
	StorageWord     uint64 // SSTORE of a fresh 32-byte word
	LogBase         uint64 // LOG0 base
	LogByte         uint64 // per byte of log data
}

// DefaultGasSchedule returns the Istanbul constants.
func DefaultGasSchedule() GasSchedule {
	return GasSchedule{
		TxBase:          21000,
		CalldataZero:    4,
		CalldataNonZero: 16,
		StorageWord:     20000,
		LogBase:         375,
		LogByte:         8,
	}
}

// CalldataGas returns the calldata portion of a transaction's gas.
func (g GasSchedule) CalldataGas(data []byte) uint64 {
	var total uint64
	for _, b := range data {
		if b == 0 {
			total += g.CalldataZero
		} else {
			total += g.CalldataNonZero
		}
	}
	return total
}

// StorageGas returns the cost of persisting n bytes of contract storage.
func (g GasSchedule) StorageGas(n int) uint64 {
	words := (n + 31) / 32
	return uint64(words) * g.StorageWord
}

// Config fixes the simulated network parameters.
type Config struct {
	Gas           GasSchedule
	BlockGasLimit uint64
	BlockInterval time.Duration // logical inter-block time
	GenesisTime   time.Time

	// Retention bounds how many recent blocks keep their bodies (and how far
	// back the event log reaches). 0 — the default — retains everything, the
	// behavior every existing experiment depends on. A long-running
	// simulation (a 100k-engagement soak mines a transaction stream no real
	// node would hold in memory either) sets it to a window; cumulative
	// TotalBytes/TotalGas accounting is unaffected because it is maintained
	// as running totals, exactly like a pruned full node keeps chain-level
	// aggregates without the bodies.
	Retention uint64
}

// DefaultConfig mirrors Ethereum mainnet around Apr 2020: 10M block gas
// limit, ~13s blocks.
func DefaultConfig() Config {
	return Config{
		Gas:           DefaultGasSchedule(),
		BlockGasLimit: 10_000_000,
		BlockInterval: 13 * time.Second,
		GenesisTime:   time.Date(2020, 4, 1, 0, 0, 0, 0, time.UTC),
	}
}

// Address identifies an account. Human-readable labels keep traces legible.
type Address string

// Tx is one submitted transaction.
type Tx struct {
	From     Address
	To       Address
	Value    *big.Int
	Data     []byte
	ExtraGas uint64 // execution gas beyond intrinsic+calldata (e.g. verification)
	Note     string
}

// Receipt reports the outcome of a mined transaction.
type Receipt struct {
	TxIndex  int
	Block    uint64
	GasUsed  uint64
	DataSize int
}

// Event is an emitted contract event ("broadcast" in Fig. 2).
type Event struct {
	Block uint64
	Name  string
	Data  []byte
}

// Block is one sealed block.
type Block struct {
	Number   uint64
	Time     time.Time
	GasUsed  uint64
	Txs      []*Tx
	ByteSize int
}

// Chain is the simulated ledger and the single mining authority of the
// simulation: every block is sealed through MineBlock, and block events fan
// out to subscribers registered with Subscribe. All methods are safe for
// concurrent use.
type Chain struct {
	mu        sync.Mutex
	cfg       Config
	balances  map[Address]*big.Int
	locked    map[Address]*big.Int
	blocks    []*Block
	pending   []*Tx
	events    []Event
	txCount   int
	subs      map[uint64]*Subscription
	nextSubID uint64

	// Running aggregates over every sealed block, pruned or not.
	totalBytes   int
	totalGas     uint64
	prunedBlocks uint64

	// historyReads counts bulk history snapshots (Events, Blocks) — the
	// expensive "rescan the chain" accesses. Recovery tests pin this at
	// zero across sched.Recover to prove a restart never rescans.
	historyReads uint64
}

// Errors surfaced by ledger operations.
var (
	ErrInsufficientFunds = errors.New("chain: insufficient funds")
	ErrBlockGasExceeded  = errors.New("chain: transaction exceeds block gas limit")
)

// New returns a fresh chain with only the genesis block.
func New(cfg Config) *Chain {
	c := &Chain{
		cfg:      cfg,
		balances: make(map[Address]*big.Int),
		locked:   make(map[Address]*big.Int),
	}
	c.blocks = append(c.blocks, &Block{Number: 0, Time: cfg.GenesisTime})
	return c
}

// Config returns the chain configuration.
func (c *Chain) Config() Config { return c.cfg }

// Fund credits an account (test/genesis allocation).
func (c *Chain) Fund(a Address, amount *big.Int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.creditLocked(a, amount)
}

func (c *Chain) creditLocked(a Address, amount *big.Int) {
	if b, ok := c.balances[a]; ok {
		b.Add(b, amount)
	} else {
		c.balances[a] = new(big.Int).Set(amount)
	}
}

// Balance returns the spendable balance of a.
func (c *Chain) Balance(a Address) *big.Int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if b, ok := c.balances[a]; ok {
		return new(big.Int).Set(b)
	}
	return new(big.Int)
}

// LockedBalance returns a's escrowed funds.
func (c *Chain) LockedBalance(a Address) *big.Int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if b, ok := c.locked[a]; ok {
		return new(big.Int).Set(b)
	}
	return new(big.Int)
}

// Transfer moves value between accounts immediately (used by contract
// logic; gas for the enclosing call is charged via Submit).
func (c *Chain) Transfer(from, to Address, amount *big.Int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.transferLocked(from, to, amount)
}

func (c *Chain) transferLocked(from, to Address, amount *big.Int) error {
	if amount.Sign() < 0 {
		return fmt.Errorf("chain: negative transfer")
	}
	b, ok := c.balances[from]
	if !ok || b.Cmp(amount) < 0 {
		return fmt.Errorf("%w: %s has %v, needs %v", ErrInsufficientFunds, from, b, amount)
	}
	b.Sub(b, amount)
	c.creditLocked(to, amount)
	return nil
}

// Lock escrows amount from a's balance (the Fig. 2 "freeze" deposits).
func (c *Chain) Lock(a Address, amount *big.Int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.balances[a]
	if !ok || b.Cmp(amount) < 0 {
		return fmt.Errorf("%w: cannot lock %v for %s", ErrInsufficientFunds, amount, a)
	}
	b.Sub(b, amount)
	if l, ok := c.locked[a]; ok {
		l.Add(l, amount)
	} else {
		c.locked[a] = new(big.Int).Set(amount)
	}
	return nil
}

// Unlock releases amount of a's escrow to recipient ("unlock and transact
// $ to ..." in Fig. 2).
func (c *Chain) Unlock(a Address, amount *big.Int, recipient Address) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	l, ok := c.locked[a]
	if !ok || l.Cmp(amount) < 0 {
		return fmt.Errorf("%w: cannot unlock %v of %s", ErrInsufficientFunds, amount, a)
	}
	l.Sub(l, amount)
	c.creditLocked(recipient, amount)
	return nil
}

// Submit queues a transaction and returns its gas cost breakdown. The
// transaction is included in the next mined block; gas is metered now so
// callers can account costs deterministically.
func (c *Chain) Submit(tx *Tx) (*Receipt, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	gas := c.cfg.Gas.TxBase + c.cfg.Gas.CalldataGas(tx.Data) + tx.ExtraGas
	if gas > c.cfg.BlockGasLimit {
		return nil, fmt.Errorf("%w: %d > %d", ErrBlockGasExceeded, gas, c.cfg.BlockGasLimit)
	}
	if tx.Value != nil && tx.Value.Sign() > 0 {
		if err := c.transferLocked(tx.From, tx.To, tx.Value); err != nil {
			return nil, err
		}
	}
	c.pending = append(c.pending, tx)
	c.txCount++
	return &Receipt{
		TxIndex:  c.txCount - 1,
		Block:    c.nextHeightLocked(), // the block it will land in
		GasUsed:  gas,
		DataSize: len(tx.Data),
	}, nil
}

// nextHeightLocked returns the number of the next block to be mined. It is
// head+1 rather than len(blocks): the two diverge once retention pruning
// drops old bodies.
func (c *Chain) nextHeightLocked() uint64 {
	return c.blocks[len(c.blocks)-1].Number + 1
}

// Emit appends a contract event.
func (c *Chain) Emit(name string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, Event{Block: c.nextHeightLocked(), Name: name, Data: data})
}

// Events returns a snapshot of all events.
func (c *Chain) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.historyReads++
	return append([]Event(nil), c.events...)
}

// MineBlock seals all pending transactions into a new block, respecting the
// block gas limit (overflow spills into subsequent blocks).
func (c *Chain) MineBlock() *Block {
	c.mu.Lock()
	defer c.mu.Unlock()
	prev := c.blocks[len(c.blocks)-1]
	blk := &Block{
		Number: prev.Number + 1,
		Time:   prev.Time.Add(c.cfg.BlockInterval),
	}
	var kept []*Tx
	for i, tx := range c.pending {
		gas := c.cfg.Gas.TxBase + c.cfg.Gas.CalldataGas(tx.Data) + tx.ExtraGas
		if blk.GasUsed+gas > c.cfg.BlockGasLimit && len(blk.Txs) > 0 {
			kept = c.pending[i:]
			break
		}
		blk.GasUsed += gas
		blk.Txs = append(blk.Txs, tx)
		blk.ByteSize += txWireSize(tx)
	}
	c.pending = kept
	c.blocks = append(c.blocks, blk)
	c.totalBytes += blk.ByteSize
	c.totalGas += blk.GasUsed
	c.pruneLocked()
	for _, s := range c.subs {
		s.publish(blk)
	}
	return blk
}

// pruneLocked drops block bodies and events older than the retention window.
// Aggregates (TotalBytes, TotalGas, Height) are unaffected; only the
// per-block and per-event history shrinks.
func (c *Chain) pruneLocked() {
	r := c.cfg.Retention
	if r == 0 || uint64(len(c.blocks)) <= r {
		return
	}
	drop := uint64(len(c.blocks)) - r
	// Copy into a fresh slice so the dropped blocks' backing array — and the
	// transactions it pins — becomes collectible.
	c.blocks = append(make([]*Block, 0, r), c.blocks[drop:]...)
	c.prunedBlocks += drop
	cutoff := c.blocks[0].Number
	i := sort.Search(len(c.events), func(i int) bool { return c.events[i].Block >= cutoff })
	if i > 0 {
		c.events = append(make([]Event, 0, len(c.events)-i), c.events[i:]...)
	}
}

// txWireSize approximates a transaction's on-chain footprint: ~110 bytes of
// envelope (nonce, gas fields, signature, addresses) plus calldata.
func txWireSize(tx *Tx) int { return 110 + len(tx.Data) }

// Height returns the latest block number.
func (c *Chain) Height() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.blocks[len(c.blocks)-1].Number
}

// Now returns the latest block timestamp (the contract's clock).
func (c *Chain) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.blocks[len(c.blocks)-1].Time
}

// TotalBytes returns the cumulative chain size in bytes (Fig. 10 left),
// including blocks pruned out of the retention window.
func (c *Chain) TotalBytes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.totalBytes
}

// TotalGas returns cumulative gas used across all blocks, including blocks
// pruned out of the retention window.
func (c *Chain) TotalGas() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.totalGas
}

// Blocks returns a snapshot of the retained block headers (all blocks when
// Config.Retention is 0).
func (c *Chain) Blocks() []*Block {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.historyReads++
	return append([]*Block(nil), c.blocks...)
}

// HistoryReads returns how many bulk history snapshots (Events, Blocks)
// have been taken. A recovery path that claims "no rescan" proves it by
// showing this counter unchanged.
func (c *Chain) HistoryReads() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.historyReads
}

// PrunedBlocks returns how many old blocks the retention window has dropped.
func (c *Chain) PrunedBlocks() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.prunedBlocks
}

// PendingCount returns the mempool depth.
func (c *Chain) PendingCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}
