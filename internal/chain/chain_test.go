package chain

import (
	"errors"
	"math/big"
	"testing"
)

func eth(n int64) *big.Int {
	return new(big.Int).Mul(big.NewInt(n), big.NewInt(1e18))
}

func TestFundAndBalance(t *testing.T) {
	c := New(DefaultConfig())
	c.Fund("alice", eth(5))
	if c.Balance("alice").Cmp(eth(5)) != 0 {
		t.Fatal("balance wrong after funding")
	}
	if c.Balance("nobody").Sign() != 0 {
		t.Fatal("unknown account has balance")
	}
}

func TestTransfer(t *testing.T) {
	c := New(DefaultConfig())
	c.Fund("alice", eth(5))
	if err := c.Transfer("alice", "bob", eth(2)); err != nil {
		t.Fatal(err)
	}
	if c.Balance("alice").Cmp(eth(3)) != 0 || c.Balance("bob").Cmp(eth(2)) != 0 {
		t.Fatal("balances wrong after transfer")
	}
	if err := c.Transfer("alice", "bob", eth(100)); !errors.Is(err, ErrInsufficientFunds) {
		t.Fatalf("overdraft err = %v", err)
	}
	if err := c.Transfer("alice", "bob", big.NewInt(-1)); err == nil {
		t.Fatal("negative transfer accepted")
	}
}

func TestLockUnlock(t *testing.T) {
	c := New(DefaultConfig())
	c.Fund("sp", eth(10))
	if err := c.Lock("sp", eth(4)); err != nil {
		t.Fatal(err)
	}
	if c.Balance("sp").Cmp(eth(6)) != 0 || c.LockedBalance("sp").Cmp(eth(4)) != 0 {
		t.Fatal("lock accounting wrong")
	}
	// Slash half the escrow to the owner.
	if err := c.Unlock("sp", eth(2), "owner"); err != nil {
		t.Fatal(err)
	}
	if c.Balance("owner").Cmp(eth(2)) != 0 || c.LockedBalance("sp").Cmp(eth(2)) != 0 {
		t.Fatal("unlock accounting wrong")
	}
	if err := c.Unlock("sp", eth(10), "owner"); !errors.Is(err, ErrInsufficientFunds) {
		t.Fatal("over-unlock accepted")
	}
	if err := c.Lock("sp", eth(100)); !errors.Is(err, ErrInsufficientFunds) {
		t.Fatal("over-lock accepted")
	}
}

func TestCalldataGas(t *testing.T) {
	g := DefaultGasSchedule()
	data := []byte{0, 0, 1, 2}
	if got := g.CalldataGas(data); got != 2*4+2*16 {
		t.Fatalf("calldata gas = %d", got)
	}
	if g.StorageGas(33) != 2*20000 {
		t.Fatal("storage gas word rounding wrong")
	}
}

func TestSubmitMeteringAndMining(t *testing.T) {
	c := New(DefaultConfig())
	c.Fund("alice", eth(1))
	data := make([]byte, 100)
	for i := range data {
		data[i] = byte(i) // mix of one zero byte and 99 non-zero
	}
	rcpt, err := c.Submit(&Tx{From: "alice", To: "contract", Data: data, ExtraGas: 5000})
	if err != nil {
		t.Fatal(err)
	}
	wantGas := uint64(21000) + 1*4 + 99*16 + 5000
	if rcpt.GasUsed != wantGas {
		t.Fatalf("gas = %d, want %d", rcpt.GasUsed, wantGas)
	}

	blk := c.MineBlock()
	if blk.Number != 1 || len(blk.Txs) != 1 || blk.GasUsed != wantGas {
		t.Fatalf("block = %+v", blk)
	}
	if blk.ByteSize != 110+100 {
		t.Fatalf("block size = %d", blk.ByteSize)
	}
	if c.Height() != 1 {
		t.Fatal("height wrong")
	}
	if c.TotalBytes() != blk.ByteSize {
		t.Fatal("total bytes wrong")
	}
	if c.TotalGas() != wantGas {
		t.Fatal("total gas wrong")
	}
}

func TestSubmitValueTransfers(t *testing.T) {
	c := New(DefaultConfig())
	c.Fund("alice", eth(3))
	if _, err := c.Submit(&Tx{From: "alice", To: "bob", Value: eth(1)}); err != nil {
		t.Fatal(err)
	}
	if c.Balance("bob").Cmp(eth(1)) != 0 {
		t.Fatal("value transfer not applied")
	}
	if _, err := c.Submit(&Tx{From: "alice", To: "bob", Value: eth(10)}); err == nil {
		t.Fatal("overdraft via Submit accepted")
	}
}

func TestBlockGasLimitSpillover(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockGasLimit = 50000 // fits two bare txs, not three
	c := New(cfg)
	for i := 0; i < 3; i++ {
		if _, err := c.Submit(&Tx{From: "a", To: "b"}); err != nil {
			t.Fatal(err)
		}
	}
	b1 := c.MineBlock()
	if len(b1.Txs) != 2 {
		t.Fatalf("block 1 has %d txs, want 2", len(b1.Txs))
	}
	if c.PendingCount() != 1 {
		t.Fatal("spillover not kept pending")
	}
	b2 := c.MineBlock()
	if len(b2.Txs) != 1 {
		t.Fatalf("block 2 has %d txs, want 1", len(b2.Txs))
	}
}

func TestSubmitRejectsOversizedTx(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockGasLimit = 22000
	c := New(cfg)
	if _, err := c.Submit(&Tx{From: "a", To: "b", ExtraGas: 10_000}); !errors.Is(err, ErrBlockGasExceeded) {
		t.Fatalf("err = %v", err)
	}
}

func TestBlockTimestamps(t *testing.T) {
	cfg := DefaultConfig()
	c := New(cfg)
	t0 := c.Now()
	c.MineBlock()
	c.MineBlock()
	if got := c.Now().Sub(t0); got != 2*cfg.BlockInterval {
		t.Fatalf("clock advanced %v, want %v", got, 2*cfg.BlockInterval)
	}
}

func TestEvents(t *testing.T) {
	c := New(DefaultConfig())
	c.Emit("challenged", []byte{1})
	c.Emit("proofposted", nil)
	evs := c.Events()
	if len(evs) != 2 || evs[0].Name != "challenged" || evs[1].Name != "proofposted" {
		t.Fatalf("events = %+v", evs)
	}
}

func TestHistoryReadsCounter(t *testing.T) {
	c := New(DefaultConfig())
	if n := c.HistoryReads(); n != 0 {
		t.Fatalf("fresh chain history reads = %d", n)
	}
	c.MineBlock()
	c.Emit("challenged", nil)
	sub := c.SubscribeFrom(0) // subscription replay is not a history snapshot
	defer sub.Unsubscribe()
	if n := c.HistoryReads(); n != 0 {
		t.Fatalf("history reads = %d after mining and subscribing, want 0", n)
	}
	c.Events()
	c.Blocks()
	if n := c.HistoryReads(); n != 2 {
		t.Fatalf("history reads = %d after Events+Blocks, want 2", n)
	}
}
