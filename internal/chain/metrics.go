package chain

import "repro/internal/obs"

// Instrument registers the dsn_chain_* metric family on reg, func-backed
// over the chain's existing accessors so the hot paths stay untouched
// and the crash-matrix pins on HistoryReads keep reading the accessor
// directly. A nil registry is a no-op.
func (c *Chain) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("dsn_chain_height", "current block height",
		func() float64 { return float64(c.Height()) })
	reg.GaugeFunc("dsn_chain_pending", "transactions waiting for the next block",
		func() float64 { return float64(c.PendingCount()) })
	reg.CounterFunc("dsn_chain_history_reads_total", "bulk history snapshots served (Events, Blocks)",
		func() float64 { return float64(c.HistoryReads()) })
	reg.CounterFunc("dsn_chain_gas_total", "cumulative gas charged across all mined transactions",
		func() float64 { return float64(c.TotalGas()) })
	reg.CounterFunc("dsn_chain_bytes_total", "cumulative calldata bytes across all mined transactions",
		func() float64 { return float64(c.TotalBytes()) })
	reg.CounterFunc("dsn_chain_pruned_blocks_total", "blocks dropped by history pruning",
		func() float64 { return float64(c.PrunedBlocks()) })
}
