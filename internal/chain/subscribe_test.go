package chain

import (
	"sync"
	"testing"
	"time"
)

// TestSubscribeDeliversInOrder verifies lossless, ordered delivery.
func TestSubscribeDeliversInOrder(t *testing.T) {
	c := New(DefaultConfig())
	sub := c.Subscribe()
	defer sub.Unsubscribe()

	const n = 100
	for i := 0; i < n; i++ {
		c.MineBlock()
	}
	for i := 0; i < n; i++ {
		select {
		case b := <-sub.Blocks():
			if b.Number != uint64(i+1) {
				t.Fatalf("block %d delivered as #%d", i+1, b.Number)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("timed out waiting for block %d", i+1)
		}
	}
}

// TestSubscribeStartsAtSubscription proves blocks mined before Subscribe are
// not replayed.
func TestSubscribeStartsAtSubscription(t *testing.T) {
	c := New(DefaultConfig())
	c.MineBlock()
	c.MineBlock()
	sub := c.Subscribe()
	defer sub.Unsubscribe()
	c.MineBlock()
	select {
	case b := <-sub.Blocks():
		if b.Number != 3 {
			t.Fatalf("first delivered block #%d, want 3", b.Number)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no delivery")
	}
}

// TestSubscribeFromReplaysRetainedBlocks proves SubscribeFrom pre-queues
// every retained block past the anchor, in order, ahead of new mining — the
// gap-free resume a restarted scheduler needs.
func TestSubscribeFromReplaysRetainedBlocks(t *testing.T) {
	c := New(DefaultConfig())
	for i := 0; i < 5; i++ {
		c.MineBlock()
	}
	sub := c.SubscribeFrom(2)
	defer sub.Unsubscribe()
	c.MineBlock()
	for want := uint64(3); want <= 6; want++ {
		select {
		case b := <-sub.Blocks():
			if b.Number != want {
				t.Fatalf("delivered block #%d, want %d", b.Number, want)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("timed out waiting for block %d", want)
		}
	}
}

// TestSubscribeFromAtHead proves SubscribeFrom anchored at the current head
// is exactly Subscribe: nothing replayed, delivery starts at the next block.
func TestSubscribeFromAtHead(t *testing.T) {
	c := New(DefaultConfig())
	c.MineBlock()
	c.MineBlock()
	sub := c.SubscribeFrom(c.Height())
	defer sub.Unsubscribe()
	c.MineBlock()
	select {
	case b := <-sub.Blocks():
		if b.Number != 3 {
			t.Fatalf("first delivered block #%d, want 3", b.Number)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no delivery")
	}
}

// TestUnsubscribeClosesChannel verifies Unsubscribe closes Blocks() and is
// idempotent, even with a full queue.
func TestUnsubscribeClosesChannel(t *testing.T) {
	c := New(DefaultConfig())
	sub := c.Subscribe()
	c.MineBlock()
	c.MineBlock()
	sub.Unsubscribe()
	sub.Unsubscribe()
	// Mining after unsubscribe must not panic or deliver.
	c.MineBlock()
	deadline := time.After(2 * time.Second)
	for {
		select {
		case _, ok := <-sub.Blocks():
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("channel never closed")
		}
	}
}

// TestConcurrentSubscribers runs several subscribers against a concurrent
// miner under -race: everyone sees every block mined after they joined.
func TestConcurrentSubscribers(t *testing.T) {
	c := New(DefaultConfig())
	const subscribers = 4
	const blocks = 200

	subs := make([]*Subscription, subscribers)
	for i := range subs {
		subs[i] = c.Subscribe()
	}

	var wg sync.WaitGroup
	counts := make([]int, subscribers)
	for i := range subs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var last uint64
			for b := range subs[i].Blocks() {
				if b.Number <= last {
					t.Errorf("subscriber %d: block %d after %d", i, b.Number, last)
					return
				}
				last = b.Number
				counts[i]++
				if counts[i] == blocks {
					return
				}
			}
		}(i)
	}
	go func() {
		for i := 0; i < blocks; i++ {
			c.MineBlock()
		}
	}()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("timed out")
	}
	for i, n := range counts {
		if n != blocks {
			t.Fatalf("subscriber %d saw %d blocks, want %d", i, n, blocks)
		}
	}
	for _, s := range subs {
		s.Unsubscribe()
	}
}
