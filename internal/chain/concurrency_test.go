package chain

import (
	"fmt"
	"math/big"
	"sync"
	"testing"
)

// TestConcurrentSubmitAndMine exercises the ledger under parallel load:
// many goroutines submitting transactions and emitting events while a miner
// seals blocks. Run with -race to catch synchronization bugs.
func TestConcurrentSubmitAndMine(t *testing.T) {
	c := New(DefaultConfig())
	const workers = 8
	const perWorker = 50

	for w := 0; w < workers; w++ {
		c.Fund(Address(fmt.Sprintf("acct-%d", w)), big.NewInt(1_000_000))
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			from := Address(fmt.Sprintf("acct-%d", w))
			for i := 0; i < perWorker; i++ {
				if _, err := c.Submit(&Tx{From: from, To: "sink", Value: big.NewInt(1)}); err != nil {
					t.Error(err)
					return
				}
				c.Emit("tick", nil)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	for {
		select {
		case <-done:
			// Drain the mempool.
			for c.PendingCount() > 0 {
				c.MineBlock()
			}
			total := 0
			for _, b := range c.Blocks() {
				total += len(b.Txs)
			}
			if total != workers*perWorker {
				t.Fatalf("mined %d txs, want %d", total, workers*perWorker)
			}
			if c.Balance("sink").Cmp(big.NewInt(workers*perWorker)) != 0 {
				t.Fatalf("sink balance %v", c.Balance("sink"))
			}
			if len(c.Events()) != workers*perWorker {
				t.Fatalf("%d events", len(c.Events()))
			}
			return
		default:
			c.MineBlock()
		}
	}
}

// TestConcurrentBalanceReads hammers reads against writes.
func TestConcurrentBalanceReads(t *testing.T) {
	c := New(DefaultConfig())
	c.Fund("a", big.NewInt(1_000_000))
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				c.Balance("a")
				c.LockedBalance("a")
				c.TotalBytes()
				c.Height()
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				_ = c.Transfer("a", "b", big.NewInt(1))
				_ = c.Lock("a", big.NewInt(1))
				_ = c.Unlock("a", big.NewInt(1), "a")
			}
		}()
	}
	wg.Wait()
}
