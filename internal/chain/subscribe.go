package chain

import "sync"

// Subscription delivers every block mined after Subscribe was called, in
// order and without loss. Blocks are queued internally, so a slow consumer
// never blocks the miner; Unsubscribe releases the queue and closes the
// delivery channel.
type Subscription struct {
	chain *Chain
	id    uint64

	mu    sync.Mutex
	queue []*Block

	wake chan struct{} // cap 1: "queue became non-empty"
	done chan struct{}
	out  chan *Block

	closeOnce sync.Once
}

// Subscribe registers a new block-event subscriber. Every block sealed by
// MineBlock after this call is delivered on Blocks(). The caller must
// eventually call Unsubscribe to release resources.
func (c *Chain) Subscribe() *Subscription {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := &Subscription{
		chain: c,
		id:    c.nextSubID,
		wake:  make(chan struct{}, 1),
		done:  make(chan struct{}),
		out:   make(chan *Block),
	}
	c.nextSubID++
	if c.subs == nil {
		c.subs = make(map[uint64]*Subscription)
	}
	c.subs[s.id] = s
	go s.pump()
	return s
}

// SubscribeFrom is Subscribe anchored at a height: retained blocks with
// numbers greater than after are pre-queued for delivery, in order, ahead
// of anything mined later. A consumer that knows the last height it
// processed — a restarted scheduler recovering from its journal — resumes
// from exactly there without a gap, bounded by Config.Retention like any
// pruned node. Called with after at the current head it is equivalent to
// Subscribe.
func (c *Chain) SubscribeFrom(after uint64) *Subscription {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := &Subscription{
		chain: c,
		id:    c.nextSubID,
		wake:  make(chan struct{}, 1),
		done:  make(chan struct{}),
		out:   make(chan *Block),
	}
	c.nextSubID++
	for _, b := range c.blocks {
		if b.Number > after {
			s.queue = append(s.queue, b)
		}
	}
	if c.subs == nil {
		c.subs = make(map[uint64]*Subscription)
	}
	c.subs[s.id] = s
	go s.pump()
	if len(s.queue) > 0 {
		s.wake <- struct{}{}
	}
	return s
}

// Blocks returns the delivery channel. It is closed after Unsubscribe.
func (s *Subscription) Blocks() <-chan *Block { return s.out }

// Unsubscribe detaches the subscription from the chain. Safe to call more
// than once and safe to call concurrently with MineBlock.
func (s *Subscription) Unsubscribe() {
	s.closeOnce.Do(func() {
		s.chain.mu.Lock()
		delete(s.chain.subs, s.id)
		s.chain.mu.Unlock()
		close(s.done)
	})
}

// publish queues a block for delivery. Called by MineBlock with the chain
// lock held; it must not block.
func (s *Subscription) publish(b *Block) {
	s.mu.Lock()
	s.queue = append(s.queue, b)
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// pump moves blocks from the internal queue to the delivery channel.
func (s *Subscription) pump() {
	defer close(s.out)
	for {
		s.mu.Lock()
		var next *Block
		if len(s.queue) > 0 {
			next = s.queue[0]
			s.queue = s.queue[1:]
		}
		s.mu.Unlock()
		if next == nil {
			select {
			case <-s.wake:
				continue
			case <-s.done:
				return
			}
		}
		select {
		case s.out <- next:
		case <-s.done:
			return
		}
	}
}
