package chain

import (
	"math/big"
	"testing"
)

func TestRetentionPrunesBodiesKeepsAggregates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Retention = 4
	c := New(cfg)
	c.Fund("alice", big.NewInt(1_000_000))

	var wantBytes int
	var wantGas uint64
	for i := 0; i < 20; i++ {
		rcpt, err := c.Submit(&Tx{From: "alice", To: "bob", Data: []byte{1, 2, 3}})
		if err != nil {
			t.Fatal(err)
		}
		c.Emit("tick", nil)
		blk := c.MineBlock()
		wantBytes += blk.ByteSize
		wantGas += blk.GasUsed
		if rcpt.Block != blk.Number {
			t.Fatalf("receipt predicted block %d, tx landed in %d", rcpt.Block, blk.Number)
		}
	}

	if got := len(c.Blocks()); got != 4 {
		t.Fatalf("retained %d blocks, want 4", got)
	}
	if c.Height() != 20 {
		t.Fatalf("height %d, want 20", c.Height())
	}
	if c.PrunedBlocks() != 17 { // genesis + 20 mined - 4 retained
		t.Fatalf("pruned %d blocks, want 17", c.PrunedBlocks())
	}
	if got := c.TotalBytes(); got != wantBytes {
		t.Fatalf("TotalBytes %d after pruning, want %d", got, wantBytes)
	}
	if got := c.TotalGas(); got != wantGas {
		t.Fatalf("TotalGas %d after pruning, want %d", got, wantGas)
	}

	// The event log is trimmed to the same window: nothing older than the
	// oldest retained block survives, and recent events do.
	events := c.Events()
	if len(events) == 0 {
		t.Fatal("no events retained")
	}
	oldest := c.Blocks()[0].Number
	for _, e := range events {
		if e.Block < oldest {
			t.Fatalf("event from block %d survived pruning (oldest retained %d)", e.Block, oldest)
		}
	}
}

func TestRetentionZeroKeepsEverything(t *testing.T) {
	c := New(DefaultConfig())
	for i := 0; i < 10; i++ {
		c.Emit("tick", nil)
		c.MineBlock()
	}
	if got := len(c.Blocks()); got != 11 { // genesis + 10
		t.Fatalf("retained %d blocks, want 11", got)
	}
	if got := len(c.Events()); got != 10 {
		t.Fatalf("retained %d events, want 10", got)
	}
	if c.PrunedBlocks() != 0 {
		t.Fatalf("pruned %d blocks with retention disabled", c.PrunedBlocks())
	}
}
