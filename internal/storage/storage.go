// Package storage implements the data-plane of the decentralized storage
// network in the paper's Fig. 1: the data owner's preparation pipeline
// (mandatory client-side encryption, then erasure coding into shares) and
// the storage-provider nodes that hold shares and serve retrievals.
//
// Encryption before outsourcing is a protocol requirement, not an option
// (Section III-A: "the encryption is a mandatory action taken on the side
// of the data owner"): the auditing scheme's on-chain privacy analysis
// assumes ciphertext entropy.
package storage

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/erasure"
)

// KeySize is the AES-256 key size.
const KeySize = 32

// Errors returned by the storage layer.
var (
	ErrNotFound  = errors.New("storage: object not found")
	ErrCorrupted = errors.New("storage: integrity check failed")
)

// Sealed is an encrypted, authenticated blob ready for outsourcing.
type Sealed struct {
	Nonce [aes.BlockSize]byte
	Body  []byte // ciphertext
	Tag   [sha256.Size]byte
}

// Seal encrypts data under key with AES-256-CTR and authenticates it with
// HMAC-SHA256 (encrypt-then-MAC). rng may be nil for crypto/rand.
func Seal(key []byte, data []byte, rng io.Reader) (*Sealed, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("storage: key must be %d bytes, got %d", KeySize, len(key))
	}
	if rng == nil {
		rng = rand.Reader
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	s := &Sealed{Body: make([]byte, len(data))}
	if _, err := io.ReadFull(rng, s.Nonce[:]); err != nil {
		return nil, err
	}
	cipher.NewCTR(block, s.Nonce[:]).XORKeyStream(s.Body, data)
	mac := hmac.New(sha256.New, macKey(key))
	mac.Write(s.Nonce[:])
	mac.Write(s.Body)
	mac.Sum(s.Tag[:0])
	return s, nil
}

// Open authenticates and decrypts a sealed blob.
func Open(key []byte, s *Sealed) ([]byte, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("storage: key must be %d bytes, got %d", KeySize, len(key))
	}
	mac := hmac.New(sha256.New, macKey(key))
	mac.Write(s.Nonce[:])
	mac.Write(s.Body)
	if !hmac.Equal(mac.Sum(nil), s.Tag[:]) {
		return nil, ErrCorrupted
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(s.Body))
	cipher.NewCTR(block, s.Nonce[:]).XORKeyStream(out, s.Body)
	return out, nil
}

// macKey derives an independent MAC key from the encryption key.
func macKey(key []byte) []byte {
	h := sha256.Sum256(append([]byte("mac:"), key...))
	return h[:]
}

// Marshal flattens a sealed blob to bytes (nonce || tag || body).
func (s *Sealed) Marshal() []byte {
	out := make([]byte, 0, len(s.Nonce)+len(s.Tag)+len(s.Body))
	out = append(out, s.Nonce[:]...)
	out = append(out, s.Tag[:]...)
	out = append(out, s.Body...)
	return out
}

// UnmarshalSealed parses a flattened sealed blob.
func UnmarshalSealed(data []byte) (*Sealed, error) {
	if len(data) < aes.BlockSize+sha256.Size {
		return nil, errors.New("storage: sealed blob too short")
	}
	s := &Sealed{}
	copy(s.Nonce[:], data[:aes.BlockSize])
	copy(s.Tag[:], data[aes.BlockSize:aes.BlockSize+sha256.Size])
	s.Body = append([]byte(nil), data[aes.BlockSize+sha256.Size:]...)
	return s, nil
}

// Manifest records how a file was prepared: the share layout needed to
// reassemble it. The owner keeps it locally (or stores it as another
// object); the manifest never reveals plaintext.
type Manifest struct {
	Name        string
	K, M        int // erasure parameters: K data + M parity shares
	SealedSize  int // bytes of the sealed blob (pre-split)
	ShareKeys   []string
	ContentHash [sha256.Size]byte // hash of the sealed blob for end-to-end integrity
	ShareHashes [][]byte          // per-share SHA-256, indexed like ShareKeys; pins each share individually so a corrupted survivor is identified (not just detected) during repair
}

// VerifyShare checks share i's bytes against the manifest's per-share hash.
// Manifests predating share hashes (nil ShareHashes) verify nothing and
// return true; reconstruction then falls back on the whole-blob ContentHash.
func (m *Manifest) VerifyShare(i int, data []byte) bool {
	if m.ShareHashes == nil {
		return true
	}
	if i < 0 || i >= len(m.ShareHashes) {
		return false
	}
	h := sha256.Sum256(data)
	return bytes.Equal(h[:], m.ShareHashes[i])
}

// Prepare runs the full owner pipeline of Fig. 1 on plaintext data:
// seal (encrypt+MAC), then erasure-code into k+m shares. The returned
// shares are what goes to storage providers; the manifest is the owner's
// retrieval recipe.
func Prepare(name string, key, data []byte, k, m int, rng io.Reader) (*Manifest, [][]byte, error) {
	sealed, err := Seal(key, data, rng)
	if err != nil {
		return nil, nil, err
	}
	blob := sealed.Marshal()
	coder, err := erasure.NewCoder(k, m)
	if err != nil {
		return nil, nil, err
	}
	shares, err := coder.Split(blob)
	if err != nil {
		return nil, nil, err
	}
	man := &Manifest{
		Name:        name,
		K:           k,
		M:           m,
		SealedSize:  len(blob),
		ContentHash: sha256.Sum256(blob),
		ShareKeys:   make([]string, len(shares)),
		ShareHashes: make([][]byte, len(shares)),
	}
	for i := range shares {
		man.ShareKeys[i] = fmt.Sprintf("%s/share/%d", name, i)
		h := sha256.Sum256(shares[i])
		man.ShareHashes[i] = h[:]
	}
	return man, shares, nil
}

// Reassemble reverses Prepare from any K surviving shares (nil = lost).
func Reassemble(man *Manifest, key []byte, shares [][]byte) ([]byte, error) {
	coder, err := erasure.NewCoder(man.K, man.M)
	if err != nil {
		return nil, err
	}
	blob, err := coder.Join(shares, man.SealedSize)
	if err != nil {
		return nil, err
	}
	if sha256.Sum256(blob) != man.ContentHash {
		return nil, ErrCorrupted
	}
	sealed, err := UnmarshalSealed(blob)
	if err != nil {
		return nil, err
	}
	return Open(key, sealed)
}

// Provider is an in-memory storage provider node. It exposes the faults the
// experiments need: silent corruption and data dropping, the misbehaviour
// catalogue of the paper's Section III-C.
type Provider struct {
	Name string

	mu      sync.RWMutex
	objects map[string][]byte
}

// NewProvider returns an empty provider node.
func NewProvider(name string) *Provider {
	return &Provider{Name: name, objects: make(map[string][]byte)}
}

// Put stores an object (copying the bytes).
func (p *Provider) Put(key string, data []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.objects[key] = append([]byte(nil), data...)
}

// Get retrieves an object (copying the bytes).
func (p *Provider) Get(key string) ([]byte, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	obj, ok := p.objects[key]
	if !ok {
		return nil, ErrNotFound
	}
	return append([]byte(nil), obj...), nil
}

// Drop deletes an object, modeling a provider reclaiming space
// ("it may simply drop the data to reclaim more storage").
func (p *Provider) Drop(key string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.objects[key]; !ok {
		return false
	}
	delete(p.objects, key)
	return true
}

// CorruptObject flips a byte of a stored object, modeling silent bit rot or
// tampering. Returns false if the object is missing or empty.
func (p *Provider) CorruptObject(key string, offset int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	obj, ok := p.objects[key]
	if !ok || len(obj) == 0 {
		return false
	}
	obj[offset%len(obj)] ^= 0xFF
	return true
}

// UsedBytes reports total stored bytes (for capacity experiments).
func (p *Provider) UsedBytes() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	total := 0
	for _, o := range p.objects {
		total += len(o)
	}
	return total
}

// Keys returns the stored object keys (sorted order not guaranteed).
func (p *Provider) Keys() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]string, 0, len(p.objects))
	for k := range p.objects {
		out = append(out, k)
	}
	return out
}

// Equal compares two byte slices in constant time (helper for tests).
func Equal(a, b []byte) bool { return bytes.Equal(a, b) }
