package storage

import (
	"encoding/json"
	"fmt"
)

// Manifest persistence: the manifest is the owner's only way to reassemble
// an outsourced file, so it must survive owner restarts. JSON keeps it
// inspectable; the content hash inside makes corruption detectable at
// retrieval time regardless of how the manifest is stored.

// MarshalJSON-friendly mirror with explicit field names.
type manifestWire struct {
	Name        string   `json:"name"`
	K           int      `json:"data_shares"`
	M           int      `json:"parity_shares"`
	SealedSize  int      `json:"sealed_size"`
	ShareKeys   []string `json:"share_keys"`
	ContentHash []byte   `json:"content_hash"`
	ShareHashes [][]byte `json:"share_hashes,omitempty"`
}

// EncodeManifest serializes a manifest to JSON.
func EncodeManifest(m *Manifest) ([]byte, error) {
	if m == nil {
		return nil, fmt.Errorf("storage: nil manifest")
	}
	return json.Marshal(manifestWire{
		Name:        m.Name,
		K:           m.K,
		M:           m.M,
		SealedSize:  m.SealedSize,
		ShareKeys:   m.ShareKeys,
		ContentHash: m.ContentHash[:],
		ShareHashes: m.ShareHashes,
	})
}

// DecodeManifest parses a JSON manifest, validating structural sanity.
func DecodeManifest(data []byte) (*Manifest, error) {
	var w manifestWire
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("storage: bad manifest: %w", err)
	}
	if w.K < 1 || w.M < 0 || w.K+w.M > 255 {
		return nil, fmt.Errorf("storage: manifest has invalid erasure parameters k=%d m=%d", w.K, w.M)
	}
	if len(w.ShareKeys) != w.K+w.M {
		return nil, fmt.Errorf("storage: manifest lists %d share keys, want %d", len(w.ShareKeys), w.K+w.M)
	}
	if len(w.ContentHash) != len(Manifest{}.ContentHash) {
		return nil, fmt.Errorf("storage: manifest content hash has %d bytes", len(w.ContentHash))
	}
	if w.SealedSize < 0 {
		return nil, fmt.Errorf("storage: negative sealed size")
	}
	// Share hashes are optional (manifests predate them) but, when present,
	// must cover every share with a full SHA-256 each.
	if w.ShareHashes != nil {
		if len(w.ShareHashes) != w.K+w.M {
			return nil, fmt.Errorf("storage: manifest lists %d share hashes, want %d", len(w.ShareHashes), w.K+w.M)
		}
		for i, h := range w.ShareHashes {
			if len(h) != len(Manifest{}.ContentHash) {
				return nil, fmt.Errorf("storage: share hash %d has %d bytes", i, len(h))
			}
		}
	}
	m := &Manifest{
		Name:        w.Name,
		K:           w.K,
		M:           w.M,
		SealedSize:  w.SealedSize,
		ShareKeys:   w.ShareKeys,
		ShareHashes: w.ShareHashes,
	}
	copy(m.ContentHash[:], w.ContentHash)
	return m, nil
}
