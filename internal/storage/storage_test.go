package storage

import (
	"bytes"
	"crypto/rand"
	"testing"
)

func testKey(t *testing.T) []byte {
	t.Helper()
	key := make([]byte, KeySize)
	if _, err := rand.Read(key); err != nil {
		t.Fatal(err)
	}
	return key
}

func TestSealOpenRoundTrip(t *testing.T) {
	key := testKey(t)
	data := []byte("archive me")
	s, err := Seal(key, data, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Open(key, s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("seal/open round trip failed")
	}
}

func TestSealRejectsBadKeySize(t *testing.T) {
	if _, err := Seal([]byte("short"), []byte("x"), nil); err == nil {
		t.Fatal("accepted short key")
	}
	if _, err := Open([]byte("short"), &Sealed{}); err == nil {
		t.Fatal("Open accepted short key")
	}
}

func TestOpenDetectsTampering(t *testing.T) {
	key := testKey(t)
	s, _ := Seal(key, []byte("sensitive bytes"), rand.Reader)
	s.Body[0] ^= 1
	if _, err := Open(key, s); err != ErrCorrupted {
		t.Fatalf("tampered body: err = %v, want ErrCorrupted", err)
	}
	s.Body[0] ^= 1
	s.Nonce[0] ^= 1
	if _, err := Open(key, s); err != ErrCorrupted {
		t.Fatalf("tampered nonce: err = %v, want ErrCorrupted", err)
	}
}

func TestOpenWrongKey(t *testing.T) {
	key := testKey(t)
	s, _ := Seal(key, []byte("data"), rand.Reader)
	other := testKey(t)
	if _, err := Open(other, s); err != ErrCorrupted {
		t.Fatalf("wrong key: err = %v, want ErrCorrupted", err)
	}
}

func TestCiphertextLooksRandom(t *testing.T) {
	// The same plaintext sealed twice must differ (fresh nonces), and the
	// ciphertext must not contain the plaintext.
	key := testKey(t)
	plain := bytes.Repeat([]byte("A"), 256)
	s1, _ := Seal(key, plain, rand.Reader)
	s2, _ := Seal(key, plain, rand.Reader)
	if bytes.Equal(s1.Body, s2.Body) {
		t.Fatal("deterministic ciphertext: nonce reuse")
	}
	if bytes.Contains(s1.Body, []byte("AAAAAAAA")) {
		t.Fatal("plaintext pattern visible in ciphertext")
	}
}

func TestSealedMarshalRoundTrip(t *testing.T) {
	key := testKey(t)
	s, _ := Seal(key, []byte("payload"), rand.Reader)
	enc := s.Marshal()
	dec, err := UnmarshalSealed(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Nonce != s.Nonce || dec.Tag != s.Tag || !bytes.Equal(dec.Body, s.Body) {
		t.Fatal("sealed round trip mismatch")
	}
	if _, err := UnmarshalSealed(enc[:10]); err == nil {
		t.Fatal("accepted truncated blob")
	}
}

func TestPrepareReassemble(t *testing.T) {
	key := testKey(t)
	data := make([]byte, 5000)
	rand.Read(data)
	man, shares, err := Prepare("photos", key, data, 3, 7, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if len(shares) != 10 || len(man.ShareKeys) != 10 {
		t.Fatalf("got %d shares", len(shares))
	}

	// Lose the maximum 7 shares.
	kept := make([][]byte, 10)
	for _, i := range []int{0, 4, 8} {
		kept[i] = shares[i]
	}
	got, err := Reassemble(man, key, kept)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("reassembled data mismatch")
	}
}

func TestReassembleDetectsShareCorruption(t *testing.T) {
	key := testKey(t)
	data := make([]byte, 1000)
	rand.Read(data)
	man, shares, _ := Prepare("f", key, data, 2, 2, rand.Reader)
	shares[0][5] ^= 0x55
	if _, err := Reassemble(man, key, shares); err == nil {
		t.Fatal("corrupted share accepted")
	}
}

func TestReassembleTooFewShares(t *testing.T) {
	key := testKey(t)
	man, shares, _ := Prepare("f", key, []byte("hello world"), 3, 2, rand.Reader)
	kept := make([][]byte, len(shares))
	kept[0] = shares[0]
	if _, err := Reassemble(man, key, kept); err == nil {
		t.Fatal("reconstructed from too few shares")
	}
}

func TestProviderPutGetDrop(t *testing.T) {
	p := NewProvider("sp1")
	p.Put("a", []byte{1, 2, 3})
	got, err := p.Get("a")
	if err != nil || !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatal("get after put failed")
	}
	// Returned slice must be a copy.
	got[0] = 99
	again, _ := p.Get("a")
	if again[0] == 99 {
		t.Fatal("Get returned aliased storage")
	}
	if !p.Drop("a") {
		t.Fatal("drop failed")
	}
	if _, err := p.Get("a"); err != ErrNotFound {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if p.Drop("a") {
		t.Fatal("double drop succeeded")
	}
}

func TestProviderCorruptObject(t *testing.T) {
	p := NewProvider("sp1")
	p.Put("x", []byte{0, 0, 0, 0})
	if !p.CorruptObject("x", 2) {
		t.Fatal("corrupt failed")
	}
	got, _ := p.Get("x")
	if got[2] != 0xFF {
		t.Fatal("corruption not applied")
	}
	if p.CorruptObject("missing", 0) {
		t.Fatal("corrupted a missing object")
	}
}

func TestProviderAccounting(t *testing.T) {
	p := NewProvider("sp1")
	p.Put("a", make([]byte, 100))
	p.Put("b", make([]byte, 50))
	if p.UsedBytes() != 150 {
		t.Fatalf("used = %d, want 150", p.UsedBytes())
	}
	if len(p.Keys()) != 2 {
		t.Fatal("keys wrong")
	}
}
