package storage

import (
	"bytes"
	"crypto/rand"
	"testing"
)

func TestManifestRoundTrip(t *testing.T) {
	key := testKey(t)
	data := make([]byte, 2000)
	rand.Read(data)
	man, shares, err := Prepare("roundtrip", key, data, 3, 7, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := EncodeManifest(man)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeManifest(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Name != man.Name || dec.K != man.K || dec.M != man.M ||
		dec.SealedSize != man.SealedSize || dec.ContentHash != man.ContentHash {
		t.Fatal("manifest round trip mismatch")
	}

	// A restored manifest must drive reassembly.
	kept := make([][]byte, len(shares))
	kept[1], kept[4], kept[8] = shares[1], shares[4], shares[8]
	got, err := Reassemble(dec, key, kept)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("reassembly via restored manifest failed")
	}
}

func TestDecodeManifestValidation(t *testing.T) {
	if _, err := DecodeManifest([]byte("not json")); err == nil {
		t.Fatal("accepted junk")
	}
	if _, err := EncodeManifest(nil); err == nil {
		t.Fatal("encoded nil manifest")
	}
	cases := []string{
		`{"name":"x","data_shares":0,"parity_shares":1,"sealed_size":1,"share_keys":["a"],"content_hash":""}`,
		`{"name":"x","data_shares":2,"parity_shares":1,"sealed_size":1,"share_keys":["a"],"content_hash":""}`,
		`{"name":"x","data_shares":2,"parity_shares":1,"sealed_size":-5,"share_keys":["a","b","c"],"content_hash":""}`,
		`{"name":"x","data_shares":2,"parity_shares":1,"sealed_size":1,"share_keys":["a","b","c"],"content_hash":"AAA="}`,
	}
	for i, c := range cases {
		if _, err := DecodeManifest([]byte(c)); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}
