// Package merkle implements SHA-256 Merkle trees with audit paths, the
// building block of both the Siacoin-style baseline discussed in the
// paper's Section II and the ZK-SNARK strawman of Section IV: the prover
// reveals a challenged leaf plus its authentication path, and the verifier
// recomputes the root.
//
// Leaves and interior nodes are domain-separated (0x00 / 0x01 prefixes) to
// prevent second-preimage splicing attacks.
package merkle

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"math/bits"
)

// HashSize is the node digest size.
const HashSize = sha256.Size

// Tree is an immutable Merkle tree over a fixed set of leaves.
type Tree struct {
	leafCount int
	levels    [][][]byte // levels[0] = leaf hashes, last level = [root]
}

var errEmpty = errors.New("merkle: tree requires at least one leaf")

func hashLeaf(data []byte) []byte {
	h := sha256.New()
	h.Write([]byte{0x00})
	h.Write(data)
	return h.Sum(nil)
}

func hashNode(left, right []byte) []byte {
	h := sha256.New()
	h.Write([]byte{0x01})
	h.Write(left)
	h.Write(right)
	return h.Sum(nil)
}

// New builds a tree over the given leaves. Odd levels promote the trailing
// node unchanged (Bitcoin-style duplication is avoided deliberately: the
// promoted node keeps its own preimage domain).
func New(leaves [][]byte) (*Tree, error) {
	if len(leaves) == 0 {
		return nil, errEmpty
	}
	level := make([][]byte, len(leaves))
	for i, l := range leaves {
		level[i] = hashLeaf(l)
	}
	t := &Tree{leafCount: len(leaves)}
	t.levels = append(t.levels, level)
	for len(level) > 1 {
		next := make([][]byte, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, hashNode(level[i], level[i+1]))
			} else {
				next = append(next, level[i])
			}
		}
		t.levels = append(t.levels, next)
		level = next
	}
	return t, nil
}

// Root returns the tree root.
func (t *Tree) Root() []byte {
	root := t.levels[len(t.levels)-1][0]
	out := make([]byte, HashSize)
	copy(out, root)
	return out
}

// LeafCount returns the number of leaves.
func (t *Tree) LeafCount() int { return t.leafCount }

// Depth returns the number of levels above the leaves.
func (t *Tree) Depth() int { return len(t.levels) - 1 }

// PathStep is one sibling on an authentication path.
type PathStep struct {
	Hash  []byte
	Right bool // sibling sits to the right of the running hash
}

// Proof is a Merkle audit path for one leaf.
type Proof struct {
	Index int
	Leaf  []byte // the leaf data itself (revealed!)
	Path  []PathStep
}

// Prove returns the audit path for leaf index i, including the leaf data.
// Note that a Merkle audit inherently reveals the challenged leaf -- the
// privacy defect that motivates wrapping it in a SNARK (Section IV-B) or
// replacing it with the paper's HLA scheme.
func (t *Tree) Prove(index int, leaf []byte) (*Proof, error) {
	if index < 0 || index >= t.leafCount {
		return nil, fmt.Errorf("merkle: leaf index %d out of range [0, %d)", index, t.leafCount)
	}
	if !bytes.Equal(hashLeaf(leaf), t.levels[0][index]) {
		return nil, fmt.Errorf("merkle: leaf data does not match tree at index %d", index)
	}
	p := &Proof{Index: index, Leaf: append([]byte(nil), leaf...)}
	idx := index
	for lv := 0; lv < len(t.levels)-1; lv++ {
		level := t.levels[lv]
		sib := idx ^ 1
		if sib < len(level) {
			step := PathStep{Hash: append([]byte(nil), level[sib]...), Right: sib > idx}
			p.Path = append(p.Path, step)
		}
		idx >>= 1
	}
	return p, nil
}

// VerifyProof checks the audit path against root for a tree of leafCount
// leaves.
func VerifyProof(root []byte, leafCount int, p *Proof) bool {
	if p == nil || p.Index < 0 || p.Index >= leafCount {
		return false
	}
	h := hashLeaf(p.Leaf)
	idx := p.Index
	width := leafCount
	step := 0
	for width > 1 {
		sib := idx ^ 1
		if sib < width {
			if step >= len(p.Path) {
				return false
			}
			ps := p.Path[step]
			if ps.Right != (sib > idx) {
				return false
			}
			if ps.Right {
				h = hashNode(h, ps.Hash)
			} else {
				h = hashNode(ps.Hash, h)
			}
			step++
		}
		idx >>= 1
		width = (width + 1) / 2
	}
	return step == len(p.Path) && bytes.Equal(h, root)
}

// ProofSize returns the serialized byte size of an audit path for a tree of
// leafCount leaves with the given leaf size -- the on-chain cost of one
// Merkle audit (compare: 96/288 bytes for the paper's scheme regardless of
// file size).
func ProofSize(leafCount, leafSize int) int {
	if leafCount <= 1 {
		return leafSize + 8
	}
	depth := bits.Len(uint(leafCount - 1))
	return leafSize + 8 + depth*HashSize
}

// ChallengeEntropyBound returns how many audits a Merkle challenge domain of
// leafCount leaves can sustain before index reuse becomes likely (the
// birthday bound the paper invokes when criticizing "low entropy of
// challenge randomness" in Siacoin-style auditing): roughly sqrt(leafCount)
// single-leaf challenges.
func ChallengeEntropyBound(leafCount int) int {
	if leafCount <= 0 {
		return 0
	}
	n := 0
	for n*n < leafCount {
		n++
	}
	return n
}
