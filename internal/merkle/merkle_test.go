package merkle

import (
	"bytes"
	"crypto/rand"
	"fmt"
	"testing"
	"testing/quick"
)

func makeLeaves(t testing.TB, n, size int) [][]byte {
	t.Helper()
	leaves := make([][]byte, n)
	for i := range leaves {
		leaves[i] = make([]byte, size)
		if _, err := rand.Read(leaves[i]); err != nil {
			t.Fatal(err)
		}
	}
	return leaves
}

func TestEmptyTree(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("accepted an empty tree")
	}
}

func TestProveVerifyAllSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 31, 64, 100} {
		leaves := makeLeaves(t, n, 32)
		tree, err := New(leaves)
		if err != nil {
			t.Fatal(err)
		}
		root := tree.Root()
		for i := 0; i < n; i++ {
			p, err := tree.Prove(i, leaves[i])
			if err != nil {
				t.Fatalf("n=%d i=%d: %v", n, i, err)
			}
			if !VerifyProof(root, n, p) {
				t.Fatalf("n=%d i=%d: valid proof rejected", n, i)
			}
		}
	}
}

func TestProveRejectsWrongLeaf(t *testing.T) {
	leaves := makeLeaves(t, 8, 32)
	tree, _ := New(leaves)
	if _, err := tree.Prove(3, leaves[4]); err == nil {
		t.Fatal("Prove accepted mismatched leaf data")
	}
	if _, err := tree.Prove(99, leaves[0]); err == nil {
		t.Fatal("Prove accepted out-of-range index")
	}
}

func TestVerifyRejectsTamperedProof(t *testing.T) {
	leaves := makeLeaves(t, 16, 32)
	tree, _ := New(leaves)
	root := tree.Root()
	p, _ := tree.Prove(5, leaves[5])

	// Tampered leaf.
	p.Leaf[0] ^= 1
	if VerifyProof(root, 16, p) {
		t.Fatal("accepted proof with modified leaf")
	}
	p.Leaf[0] ^= 1

	// Tampered path node.
	p.Path[1].Hash[0] ^= 1
	if VerifyProof(root, 16, p) {
		t.Fatal("accepted proof with modified path")
	}
	p.Path[1].Hash[0] ^= 1

	// Wrong index.
	p.Index = 6
	if VerifyProof(root, 16, p) {
		t.Fatal("accepted proof with wrong index")
	}
	p.Index = 5

	// Truncated path.
	short := &Proof{Index: p.Index, Leaf: p.Leaf, Path: p.Path[:len(p.Path)-1]}
	if VerifyProof(root, 16, short) {
		t.Fatal("accepted truncated proof")
	}

	// Sanity: untampered verifies.
	if !VerifyProof(root, 16, p) {
		t.Fatal("control proof rejected")
	}
}

func TestVerifyRejectsWrongRoot(t *testing.T) {
	leaves := makeLeaves(t, 8, 32)
	tree, _ := New(leaves)
	p, _ := tree.Prove(0, leaves[0])
	other, _ := New(makeLeaves(t, 8, 32))
	if VerifyProof(other.Root(), 8, p) {
		t.Fatal("proof verified against a different tree's root")
	}
	if VerifyProof(tree.Root(), 8, nil) {
		t.Fatal("nil proof verified")
	}
}

func TestLeafInteriorDomainSeparation(t *testing.T) {
	// A leaf whose bytes equal an interior node's concatenation must not
	// collide with that interior hash.
	leaves := makeLeaves(t, 2, 32)
	tree, _ := New(leaves)
	fake := append(append([]byte{}, tree.levels[0][0]...), tree.levels[0][1]...)
	forged, _ := New([][]byte{fake})
	if bytes.Equal(forged.Root(), tree.Root()) {
		t.Fatal("leaf/interior domain separation failed")
	}
}

func TestProofSize(t *testing.T) {
	// A 1 GB file at 4 KB leaves: depth 18 path, ~580 bytes + leaf. The
	// key comparison for the paper: Merkle proof grows with log(file),
	// HLA proof stays 96/288 bytes.
	size := ProofSize(1<<18, 4096)
	if size != 4096+8+18*HashSize {
		t.Fatalf("ProofSize = %d", size)
	}
	if ProofSize(1, 100) != 108 {
		t.Fatal("single-leaf proof size wrong")
	}
}

func TestChallengeEntropyBound(t *testing.T) {
	if got := ChallengeEntropyBound(10000); got != 100 {
		t.Fatalf("bound(10000) = %d, want 100", got)
	}
	if ChallengeEntropyBound(0) != 0 {
		t.Fatal("bound(0) != 0")
	}
}

func TestQuickRandomTreesVerify(t *testing.T) {
	f := func(seed []byte, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		leaves := make([][]byte, n)
		for i := range leaves {
			leaves[i] = []byte(fmt.Sprintf("%x-%d", seed, i))
		}
		tree, err := New(leaves)
		if err != nil {
			return false
		}
		i := n / 2
		p, err := tree.Prove(i, leaves[i])
		if err != nil {
			return false
		}
		return VerifyProof(tree.Root(), n, p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
