package poly

import (
	"crypto/rand"
	"math/big"
	"testing"

	"repro/internal/ff"
)

func benchPoly(b *testing.B, deg int) *Poly {
	b.Helper()
	v, err := ff.RandomVector(rand.Reader, deg+1)
	if err != nil {
		b.Fatal(err)
	}
	return FromVector(v)
}

// BenchmarkAblationQuotientSynthetic measures the production quotient path
// (Definition 3's Qk via synthetic division): linear in s.
func BenchmarkAblationQuotientSynthetic(b *testing.B) {
	p := benchPoly(b, 99)
	r, _ := ff.Random(rand.Reader)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.DivideByLinear(r)
	}
}

// BenchmarkAblationQuotientNaive measures the naive alternative the design
// rejected: computing the quotient by explicit long division through
// polynomial multiplication bookkeeping (quadratic in s).
func BenchmarkAblationQuotientNaive(b *testing.B) {
	p := benchPoly(b, 99)
	r, _ := ff.Random(rand.Reader)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		naiveQuotient(p, r)
	}
}

// naiveQuotient computes (p(x) - p(r))/(x - r) by repeatedly stripping the
// leading term with a multiple of (x - r).
func naiveQuotient(p *Poly, r *big.Int) *Poly {
	rem := p.Clone()
	rem.Coeffs[0] = ff.Sub(rem.Coeffs[0], p.Eval(r))
	n := len(rem.Coeffs)
	q := ff.NewVector(n - 1)
	for d := n - 1; d >= 1; d-- {
		c := rem.Coeffs[d]
		if c.Sign() == 0 {
			continue
		}
		q[d-1] = new(big.Int).Set(c)
		// rem -= c * x^(d-1) * (x - r)
		rem.Coeffs[d] = new(big.Int)
		rem.Coeffs[d-1] = ff.Add(rem.Coeffs[d-1], ff.Mul(c, r))
	}
	return &Poly{Coeffs: q}
}

func TestNaiveQuotientMatchesSynthetic(t *testing.T) {
	v, _ := ff.RandomVector(rand.Reader, 20)
	p := FromVector(v)
	r, _ := ff.Random(rand.Reader)
	fast, _ := p.DivideByLinear(r)
	slow := naiveQuotient(p, r)
	if !fast.Equal(slow) {
		t.Fatal("naive and synthetic quotients disagree")
	}
}

func BenchmarkLinearCombination(b *testing.B) {
	const k, s = 300, 50
	polys := make([]*Poly, k)
	for i := range polys {
		polys[i] = benchPoly(b, s-1)
	}
	scalars, _ := ff.RandomVector(rand.Reader, k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LinearCombination(polys, scalars); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterpolate(b *testing.B) {
	const k = 50
	xs, _ := ff.RandomVector(rand.Reader, k)
	ys, _ := ff.RandomVector(rand.Reader, k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Interpolate(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}
