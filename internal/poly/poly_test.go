package poly

import (
	"crypto/rand"
	"math/big"
	"testing"
	"testing/quick"

	"repro/internal/ff"
)

func randPoly(t *testing.T, deg int) *Poly {
	t.Helper()
	v, err := ff.RandomVector(rand.Reader, deg+1)
	if err != nil {
		t.Fatal(err)
	}
	return FromVector(v)
}

func TestEvalHorner(t *testing.T) {
	// p(x) = 3 + 2x + x^2 at x = 5: 3 + 10 + 25 = 38.
	p := New(big.NewInt(3), big.NewInt(2), big.NewInt(1))
	if got := p.Eval(big.NewInt(5)); !ff.Equal(got, ff.New(38)) {
		t.Fatalf("p(5) = %v, want 38", got)
	}
}

func TestDegree(t *testing.T) {
	if d := Zero(5).Degree(); d != -1 {
		t.Fatalf("zero polynomial degree = %d, want -1", d)
	}
	p := New(big.NewInt(1), big.NewInt(0), big.NewInt(0))
	if d := p.Degree(); d != 0 {
		t.Fatalf("degree = %d, want 0 (trailing zeros)", d)
	}
}

func TestAddEval(t *testing.T) {
	p, q := randPoly(t, 7), randPoly(t, 4)
	x, _ := ff.Random(rand.Reader)
	sum := p.Add(q)
	want := ff.Add(p.Eval(x), q.Eval(x))
	if !ff.Equal(sum.Eval(x), want) {
		t.Fatal("(p+q)(x) != p(x)+q(x)")
	}
}

func TestMulEval(t *testing.T) {
	p, q := randPoly(t, 5), randPoly(t, 3)
	x, _ := ff.Random(rand.Reader)
	prod := p.Mul(q)
	want := ff.Mul(p.Eval(x), q.Eval(x))
	if !ff.Equal(prod.Eval(x), want) {
		t.Fatal("(p*q)(x) != p(x)*q(x)")
	}
}

func TestDivideByLinear(t *testing.T) {
	for deg := 0; deg <= 10; deg++ {
		p := randPoly(t, deg)
		r, _ := ff.Random(rand.Reader)
		q, rem := p.DivideByLinear(r)

		if !ff.Equal(rem, p.Eval(r)) {
			t.Fatalf("deg %d: remainder != p(r)", deg)
		}
		// Verify p(x) = q(x)*(x-r) + rem at a random point.
		x, _ := ff.Random(rand.Reader)
		lhs := p.Eval(x)
		rhs := ff.Add(ff.Mul(q.Eval(x), ff.Sub(x, r)), rem)
		if !ff.Equal(lhs, rhs) {
			t.Fatalf("deg %d: p != q*(x-r) + rem", deg)
		}
	}
}

func TestDivideByLinearAgainstLongDivision(t *testing.T) {
	// Cross-check synthetic division against reconstructing p from the
	// quotient: q*(x-r) + rem must equal p coefficient-wise.
	p := randPoly(t, 9)
	r, _ := ff.Random(rand.Reader)
	q, rem := p.DivideByLinear(r)
	linear := New(ff.Neg(r), big.NewInt(1)) // (x - r)
	recon := q.Mul(linear).Add(New(rem))
	if !recon.Equal(p) {
		t.Fatal("synthetic division does not reconstruct the dividend")
	}
}

func TestLinearCombination(t *testing.T) {
	const k, width = 5, 8
	polys := make([]*Poly, k)
	for i := range polys {
		polys[i] = randPoly(t, width-1)
	}
	scalars, _ := ff.RandomVector(rand.Reader, k)
	combo, err := LinearCombination(polys, scalars)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := ff.Random(rand.Reader)
	want := new(big.Int)
	for i := range polys {
		want = ff.Add(want, ff.Mul(scalars[i], polys[i].Eval(x)))
	}
	if !ff.Equal(combo.Eval(x), want) {
		t.Fatal("linear combination evaluates incorrectly")
	}
}

func TestLinearCombinationErrors(t *testing.T) {
	if _, err := LinearCombination([]*Poly{Zero(1)}, ff.Vector{}); err == nil {
		t.Fatal("accepted mismatched lengths")
	}
	if _, err := LinearCombination([]*Poly{Zero(1), Zero(2)}, ff.Vector{ff.New(1), ff.New(1)}); err == nil {
		t.Fatal("accepted ragged polynomial widths")
	}
	empty, err := LinearCombination(nil, nil)
	if err != nil || empty.Degree() != -1 {
		t.Fatal("empty combination should be the zero polynomial")
	}
}

func TestInterpolate(t *testing.T) {
	p := randPoly(t, 6)
	xs, err := ff.RandomVector(rand.Reader, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Retry on the (negligible) chance of duplicates.
	ys := make(ff.Vector, len(xs))
	for i, x := range xs {
		ys[i] = p.Eval(x)
	}
	got, err := Interpolate(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(p) {
		t.Fatal("interpolation did not recover the polynomial")
	}
}

func TestInterpolateRejectsDuplicates(t *testing.T) {
	xs := ff.Vector{ff.New(1), ff.New(1)}
	ys := ff.Vector{ff.New(2), ff.New(3)}
	if _, err := Interpolate(xs, ys); err == nil {
		t.Fatal("accepted duplicate abscissae")
	}
	if _, err := Interpolate(xs, ys[:1]); err == nil {
		t.Fatal("accepted mismatched lengths")
	}
}

func TestQuickEvalLinearity(t *testing.T) {
	f := func(a, b, xv int64) bool {
		p := New(big.NewInt(a), big.NewInt(b))
		x := ff.New(xv)
		want := ff.Add(ff.New(a), ff.Mul(ff.New(b), x))
		return ff.Equal(p.Eval(x), want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
