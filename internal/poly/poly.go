// Package poly implements dense univariate polynomial arithmetic over the
// scalar field Zn, covering exactly the operations the paper's auditing
// protocol needs:
//
//   - the per-chunk data polynomials Mi(x) of Definition 1,
//   - the challenge combination Pk(x) of Definition 3,
//   - the witness quotient Qk(x) = (Pk(x) - Pk(r))/(x - r) via synthetic
//     division, and
//   - Lagrange interpolation, used by the Section V-C adversary to
//     reconstruct Pk from on-chain audit trails.
package poly

import (
	"fmt"
	"math/big"

	"repro/internal/ff"
)

// Poly is a dense polynomial; Coeffs[i] is the coefficient of x^i. The zero
// polynomial is represented by an empty (or all-zero) coefficient slice.
type Poly struct {
	Coeffs ff.Vector
}

// New builds a polynomial from the given coefficients (constant term first).
// The coefficients are copied and reduced.
func New(coeffs ...*big.Int) *Poly {
	c := make(ff.Vector, len(coeffs))
	for i, v := range coeffs {
		c[i] = ff.Reduce(new(big.Int).Set(v))
	}
	return &Poly{Coeffs: c}
}

// FromVector builds a polynomial that uses the vector's elements as
// coefficients without copying. Callers must not alias.
func FromVector(v ff.Vector) *Poly { return &Poly{Coeffs: v} }

// Zero returns the zero polynomial with capacity for deg+1 coefficients.
func Zero(deg int) *Poly { return &Poly{Coeffs: ff.NewVector(deg + 1)} }

// Degree returns the degree of p, with -1 for the zero polynomial.
func (p *Poly) Degree() int {
	for i := len(p.Coeffs) - 1; i >= 0; i-- {
		if p.Coeffs[i].Sign() != 0 {
			return i
		}
	}
	return -1
}

// Clone returns a deep copy.
func (p *Poly) Clone() *Poly { return &Poly{Coeffs: p.Coeffs.Clone()} }

// Equal reports mathematical equality (ignoring trailing zeros).
func (p *Poly) Equal(q *Poly) bool {
	n := len(p.Coeffs)
	if len(q.Coeffs) > n {
		n = len(q.Coeffs)
	}
	zero := new(big.Int)
	for i := 0; i < n; i++ {
		a, b := zero, zero
		if i < len(p.Coeffs) {
			a = p.Coeffs[i]
		}
		if i < len(q.Coeffs) {
			b = q.Coeffs[i]
		}
		if !ff.Equal(a, b) {
			return false
		}
	}
	return true
}

// Eval evaluates p at x by Horner's rule.
func (p *Poly) Eval(x *big.Int) *big.Int {
	acc := new(big.Int)
	for i := len(p.Coeffs) - 1; i >= 0; i-- {
		acc.Mul(acc, x)
		acc.Add(acc, p.Coeffs[i])
		ff.Reduce(acc)
	}
	return acc
}

// Add returns p + q.
func (p *Poly) Add(q *Poly) *Poly {
	n := len(p.Coeffs)
	if len(q.Coeffs) > n {
		n = len(q.Coeffs)
	}
	out := ff.NewVector(n)
	for i := 0; i < n; i++ {
		if i < len(p.Coeffs) {
			out[i].Add(out[i], p.Coeffs[i])
		}
		if i < len(q.Coeffs) {
			out[i].Add(out[i], q.Coeffs[i])
		}
		ff.Reduce(out[i])
	}
	return &Poly{Coeffs: out}
}

// ScalarMul returns c * p.
func (p *Poly) ScalarMul(c *big.Int) *Poly {
	out := ff.NewVector(len(p.Coeffs))
	for i := range p.Coeffs {
		out[i] = ff.Mul(p.Coeffs[i], c)
	}
	return &Poly{Coeffs: out}
}

// Mul returns p*q by schoolbook multiplication. It is used only in tests and
// by the attack tooling; the protocol itself never multiplies polynomials.
func (p *Poly) Mul(q *Poly) *Poly {
	if p.Degree() < 0 || q.Degree() < 0 {
		return Zero(0)
	}
	out := ff.NewVector(len(p.Coeffs) + len(q.Coeffs) - 1)
	t := new(big.Int)
	for i, a := range p.Coeffs {
		if a.Sign() == 0 {
			continue
		}
		for j, b := range q.Coeffs {
			t.Mul(a, b)
			out[i+j].Add(out[i+j], t)
			ff.Reduce(out[i+j])
		}
	}
	return &Poly{Coeffs: out}
}

// LinearCombination returns sum_i scalars[i] * polys[i]. All polynomials
// must have the same length; this is the hot path building Pk(x) from the
// k challenged chunk polynomials, so it works in place over one accumulator.
func LinearCombination(polys []*Poly, scalars ff.Vector) (*Poly, error) {
	if len(polys) != len(scalars) {
		return nil, fmt.Errorf("poly: %d polynomials but %d scalars", len(polys), len(scalars))
	}
	if len(polys) == 0 {
		return Zero(0), nil
	}
	width := len(polys[0].Coeffs)
	acc := ff.NewVector(width)
	t := new(big.Int)
	for i, q := range polys {
		if len(q.Coeffs) != width {
			return nil, fmt.Errorf("poly: polynomial %d has %d coefficients, want %d", i, len(q.Coeffs), width)
		}
		c := scalars[i]
		if c.Sign() == 0 {
			continue
		}
		for j, b := range q.Coeffs {
			t.Mul(c, b)
			acc[j].Add(acc[j], t)
			ff.Reduce(acc[j])
		}
	}
	return &Poly{Coeffs: acc}, nil
}

// DivideByLinear returns the quotient q(x) = (p(x) - p(r)) / (x - r) using
// synthetic (Horner/Ruffini) division, together with the remainder p(r).
// This is Definition 3's Qk(x): the KZG opening witness polynomial.
func (p *Poly) DivideByLinear(r *big.Int) (q *Poly, rem *big.Int) {
	n := len(p.Coeffs)
	if n == 0 {
		return Zero(0), new(big.Int)
	}
	out := make(ff.Vector, n-1)
	carry := new(big.Int).Set(p.Coeffs[n-1])
	for i := n - 2; i >= 0; i-- {
		out[i] = new(big.Int).Set(carry)
		carry = ff.Add(ff.Mul(carry, r), p.Coeffs[i])
	}
	if len(out) == 0 {
		out = ff.NewVector(1)
	}
	return &Poly{Coeffs: out}, carry
}

// Interpolate returns the unique polynomial of degree < len(xs) passing
// through the points (xs[i], ys[i]). The xs must be pairwise distinct.
//
// This is the tool of the Section V-C adversary: observing s evaluations of
// the degree-(s-1) polynomial Pk on the chain fully reconstructs it.
func Interpolate(xs, ys ff.Vector) (*Poly, error) {
	k := len(xs)
	if len(ys) != k {
		return nil, fmt.Errorf("poly: %d abscissae but %d ordinates", k, len(ys))
	}
	// Duplicate abscissae make the system singular; detect them in O(k) by
	// keying the canonical encoding instead of comparing all pairs.
	seen := make(map[string]int, k)
	for i := 0; i < k; i++ {
		key := string(ff.Bytes(xs[i]))
		if j, dup := seen[key]; dup {
			return nil, fmt.Errorf("poly: duplicate interpolation abscissa at %d and %d", j, i)
		}
		seen[key] = i
	}

	result := Zero(k - 1)
	for i := 0; i < k; i++ {
		// Build the i-th Lagrange basis polynomial incrementally.
		basis := New(big.NewInt(1))
		denom := big.NewInt(1)
		for j := 0; j < k; j++ {
			if j == i {
				continue
			}
			// basis *= (x - xs[j])
			basis = basis.Mul(New(ff.Neg(xs[j]), big.NewInt(1)))
			denom = ff.Mul(denom, ff.Sub(xs[i], xs[j]))
		}
		scale := ff.Mul(ys[i], ff.Inv(denom))
		result = result.Add(basis.ScalarMul(scale))
	}
	return result, nil
}
