package bn256

import "math/big"

// gfP12 implements the quadratic extension Fp12 = Fp6[omega]/(omega^2 - tau).
// An element is x*omega + y, with the gfP6 coefficients held inline: a gfP12
// is 12 contiguous gfP limb groups with no pointer chasing.
type gfP12 struct {
	x, y gfP6
}

func newGFp12() *gfP12 { return &gfP12{} }

func (e *gfP12) String() string {
	return "(" + e.x.String() + "omega + " + e.y.String() + ")"
}

func (e *gfP12) Set(a *gfP12) *gfP12 {
	*e = *a
	return e
}

func (e *gfP12) SetZero() *gfP12 {
	*e = gfP12{}
	return e
}

func (e *gfP12) SetOne() *gfP12 {
	e.x.SetZero()
	e.y.SetOne()
	return e
}

func (e *gfP12) IsZero() bool { return e.x.IsZero() && e.y.IsZero() }

func (e *gfP12) IsOne() bool { return e.x.IsZero() && e.y.IsOne() }

func (e *gfP12) Equal(a *gfP12) bool { return *e == *a }

// Conjugate sets e to the conjugate of a over Fp6, which equals a^(p^6).
func (e *gfP12) Conjugate(a *gfP12) *gfP12 {
	e.x.Neg(&a.x)
	e.y.Set(&a.y)
	return e
}

func (e *gfP12) Neg(a *gfP12) *gfP12 {
	e.x.Neg(&a.x)
	e.y.Neg(&a.y)
	return e
}

// Frobenius sets e = a^p. omega^(p-1) = tau^((p-1)/2) = xi^((p-1)/6).
func (e *gfP12) Frobenius(a *gfP12) *gfP12 {
	e.x.Frobenius(&a.x)
	e.y.Frobenius(&a.y)
	e.x.MulGFP2(&e.x, xiToPMinus1Over6)
	return e
}

// FrobeniusP2 sets e = a^(p^2); the omega coefficient is scaled by
// xi^((p^2-1)/6), which lies in Fp.
func (e *gfP12) FrobeniusP2(a *gfP12) *gfP12 {
	e.x.FrobeniusP2(&a.x)
	e.y.FrobeniusP2(&a.y)
	e.x.MulScalar(&e.x, &xiToPSquaredMinus1Over6)
	return e
}

func (e *gfP12) Add(a, b *gfP12) *gfP12 {
	e.x.Add(&a.x, &b.x)
	e.y.Add(&a.y, &b.y)
	return e
}

func (e *gfP12) Sub(a, b *gfP12) *gfP12 {
	e.x.Sub(&a.x, &b.x)
	e.y.Sub(&a.y, &b.y)
	return e
}

// Mul sets e = a*b with omega^2 = tau:
//
//	(ax*w + ay)(bx*w + by) = (ax*by + ay*bx)w + (ay*by + tau*ax*bx),
//
// with Karatsuba on the cross term: three gfP6 multiplications.
func (e *gfP12) Mul(a, b *gfP12) *gfP12 {
	var v0, v1, tx, ty gfP6
	v0.Mul(&a.x, &b.x)
	v1.Mul(&a.y, &b.y)

	tx.Add(&a.x, &a.y)
	ty.Add(&b.x, &b.y)
	tx.Mul(&tx, &ty)
	tx.Sub(&tx, &v0)
	tx.Sub(&tx, &v1)

	ty.MulTau(&v0)
	ty.Add(&ty, &v1)

	e.x = tx
	e.y = ty
	return e
}

// Square sets e = a^2 using the complex-squaring identity
//
//	(x*w + y)^2 = (2xy)w + (y^2 + tau*x^2),
//	y^2 + tau*x^2 = (x + y)(y + tau*x) - xy - tau*(xy),
//
// two gfP6 multiplications instead of three.
func (e *gfP12) Square(a *gfP12) *gfP12 {
	var v0, t, ty gfP6
	v0.Mul(&a.x, &a.y)

	t.MulTau(&a.x)
	t.Add(&t, &a.y)
	ty.Add(&a.x, &a.y)
	ty.Mul(&ty, &t)
	ty.Sub(&ty, &v0)
	t.MulTau(&v0)
	ty.Sub(&ty, &t)

	e.y = ty
	e.x.Double(&v0)
	return e
}

// Invert sets e = 1/a = (-ax*w + ay) / (ay^2 - tau*ax^2).
func (e *gfP12) Invert(a *gfP12) *gfP12 {
	var t1, t2 gfP6
	t1.Square(&a.x)
	t1.MulTau(&t1)
	t2.Square(&a.y)
	t2.Sub(&t2, &t1)
	t2.Invert(&t2)

	e.x.Neg(&a.x)
	e.x.Mul(&e.x, &t2)
	e.y.Mul(&a.y, &t2)
	return e
}

// Exp sets e = a^k by square-and-multiply.
func (e *gfP12) Exp(a *gfP12, k *big.Int) *gfP12 {
	sum := newGFp12().SetOne()
	t := newGFp12()
	for i := k.BitLen() - 1; i >= 0; i-- {
		t.Square(sum)
		if k.Bit(i) != 0 {
			sum.Mul(t, a)
		} else {
			sum.Set(t)
		}
	}
	return e.Set(sum)
}
