package bn256

import (
	"crypto/rand"
	"errors"
	"io"
	"math/big"

	"repro/internal/parallel"
)

// Sizes of the fixed-length encodings produced by the Marshal and Compress
// methods, in bytes.
const (
	G1UncompressedSize = 64  // x || y
	G1CompressedSize   = 32  // x with sign/infinity flags in the top bits
	G2UncompressedSize = 128 // x.x || x.y || y.x || y.y
	G2CompressedSize   = 64
	GTUncompressedSize = 384 // 12 Fp coefficients
	GTCompressedSize   = 192 // torus representation: 6 Fp coefficients
)

// Flag bits packed into the most significant byte of a compressed x
// coordinate. p has 254 bits, leaving the top two bits of a 32-byte
// big-endian encoding free.
const (
	flagYOdd     = 0x80 // set when the larger square root was chosen
	flagInfinity = 0x40
)

var (
	// ErrMalformedPoint is returned by Unmarshal methods on any encoding
	// that does not decode to a valid group element.
	ErrMalformedPoint = errors.New("bn256: malformed point encoding")
)

// G1 is an element of the prime-order group of points on y^2 = x^3 + 3
// over Fp. The zero value is invalid; obtain points via the constructors.
type G1 struct {
	p *curvePoint
}

// G2 is an element of the order-n subgroup of the sextic twist E'(Fp2).
type G2 struct {
	p *twistPoint
}

// GT is an element of the order-n subgroup of Fp12* (the target group of
// the pairing).
type GT struct {
	p *gfP12
}

// RandomG1 returns k and g1^k for uniformly random k in [1, n).
func RandomG1(r io.Reader) (*big.Int, *G1, error) {
	k, err := randomScalar(r)
	if err != nil {
		return nil, nil, err
	}
	return k, new(G1).ScalarBaseMult(k), nil
}

// RandomG2 returns k and g2^k for uniformly random k in [1, n).
func RandomG2(r io.Reader) (*big.Int, *G2, error) {
	k, err := randomScalar(r)
	if err != nil {
		return nil, nil, err
	}
	return k, new(G2).ScalarBaseMult(k), nil
}

func randomScalar(r io.Reader) (*big.Int, error) {
	if r == nil {
		r = rand.Reader
	}
	for {
		k, err := rand.Int(r, Order)
		if err != nil {
			return nil, err
		}
		if k.Sign() != 0 {
			return k, nil
		}
	}
}

// GenG1 returns the canonical generator of G1 (the point (1, 2)). The
// underlying coordinates are copied, so the result is an ordinary mutable
// element; the copy costs a struct assignment, versus a full fixed-base
// scalar multiplication for ScalarBaseMult(1).
func GenG1() *G1 { return &G1{p: newCurvePoint().Set(g1Gen)} }

// GenG2 returns the canonical generator of the order-n subgroup of G2.
// Like GenG1 it returns a fresh copy; prefer it over ScalarBaseMult(1),
// which pays a full double-and-add ladder over Fp2.
func GenG2() *G2 { return &G2{p: newTwistPoint().Set(g2Gen)} }

// --- G1 ---

func (e *G1) ensure() *G1 {
	if e.p == nil {
		e.p = newCurvePoint().SetInfinity()
	}
	return e
}

// ScalarBaseMult sets e = k*g1 and returns e. It uses a precomputed
// fixed-base window table (see fixedbase.go), making it roughly an order of
// magnitude faster than ScalarMult on an arbitrary point.
func (e *G1) ScalarBaseMult(k *big.Int) *G1 {
	e.ensure()
	e.p.Set(mulBaseFixed(k))
	return e
}

// ScalarMult sets e = k*a and returns e.
func (e *G1) ScalarMult(a *G1, k *big.Int) *G1 {
	e.ensure()
	e.p.Mul(a.p, k)
	return e
}

// Add sets e = a+b and returns e.
func (e *G1) Add(a, b *G1) *G1 {
	e.ensure()
	e.p.Add(a.p, b.p)
	return e
}

// Neg sets e = -a and returns e.
func (e *G1) Neg(a *G1) *G1 {
	e.ensure()
	e.p.Neg(a.p)
	return e
}

// Set sets e = a and returns e.
func (e *G1) Set(a *G1) *G1 {
	e.ensure()
	e.p.Set(a.p)
	return e
}

// SetInfinity sets e to the identity element.
func (e *G1) SetInfinity() *G1 {
	e.ensure()
	e.p.SetInfinity()
	return e
}

// IsInfinity reports whether e is the identity.
func (e *G1) IsInfinity() bool { return e.p == nil || e.p.IsInfinity() }

// Equal reports whether e and a are the same group element.
func (e *G1) Equal(a *G1) bool {
	e.ensure()
	a.ensure()
	return e.p.Equal(a.p)
}

// Marshal encodes e uncompressed as x || y (64 bytes). Infinity encodes as
// all zeros.
func (e *G1) Marshal() []byte {
	out := make([]byte, G1UncompressedSize)
	if e.IsInfinity() {
		return out
	}
	x, y := e.p.Affine()
	x.Marshal(out[:32])
	y.Marshal(out[32:])
	return out
}

// allZero reports whether data is entirely zero bytes.
func allZero(data []byte) bool {
	for _, b := range data {
		if b != 0 {
			return false
		}
	}
	return true
}

// Unmarshal decodes an uncompressed encoding, validating curve membership.
func (e *G1) Unmarshal(data []byte) error {
	if len(data) != G1UncompressedSize {
		return ErrMalformedPoint
	}
	e.ensure()
	if allZero(data) {
		e.p.SetInfinity()
		return nil
	}
	var x, y gfP
	if err := x.Unmarshal(data[:32]); err != nil {
		return err
	}
	if err := y.Unmarshal(data[32:]); err != nil {
		return err
	}
	e.p.SetAffine(&x, &y)
	if !e.p.IsOnCurve() {
		return ErrMalformedPoint
	}
	return nil
}

// MarshalCompressed encodes e in 32 bytes: the x coordinate with the y
// parity in the top bit. This is the on-chain format counted by the paper
// (96-byte plain proofs, 288-byte private proofs).
func (e *G1) MarshalCompressed() []byte {
	out := make([]byte, G1CompressedSize)
	if e.IsInfinity() {
		out[0] = flagInfinity
		return out
	}
	x, y := e.p.Affine()
	x.Marshal(out)
	if y.IsOdd() {
		out[0] |= flagYOdd
	}
	return out
}

// UnmarshalCompressed decodes a 32-byte compressed encoding.
func (e *G1) UnmarshalCompressed(data []byte) error {
	if len(data) != G1CompressedSize {
		return ErrMalformedPoint
	}
	e.ensure()
	if data[0]&flagInfinity != 0 {
		// Canonical infinity is exactly the flag byte followed by zeros.
		if data[0] != flagInfinity || !allZero(data[1:]) {
			return ErrMalformedPoint
		}
		e.p.SetInfinity()
		return nil
	}
	yOdd := data[0]&flagYOdd != 0
	raw := make([]byte, 32)
	copy(raw, data)
	raw[0] &^= flagYOdd | flagInfinity
	var x, y2, y gfP
	if err := x.Unmarshal(raw); err != nil {
		return err
	}
	gfpMul(&y2, &x, &x)
	gfpMul(&y2, &y2, &x)
	gfpAdd(&y2, &y2, &gfpCurveB)
	if y.Sqrt(&y2) == nil {
		return ErrMalformedPoint
	}
	if y.IsOdd() != yOdd {
		gfpNeg(&y, &y)
	}
	e.p.SetAffine(&x, &y)
	return nil
}

// --- G2 ---

func (e *G2) ensure() *G2 {
	if e.p == nil {
		e.p = newTwistPoint().SetInfinity()
	}
	return e
}

// ScalarBaseMult sets e = k*g2 and returns e.
func (e *G2) ScalarBaseMult(k *big.Int) *G2 {
	e.ensure()
	e.p.Mul(g2Gen, k)
	return e
}

// ScalarMult sets e = k*a and returns e.
func (e *G2) ScalarMult(a *G2, k *big.Int) *G2 {
	e.ensure()
	e.p.Mul(a.p, k)
	return e
}

// Add sets e = a+b and returns e.
func (e *G2) Add(a, b *G2) *G2 {
	e.ensure()
	e.p.Add(a.p, b.p)
	return e
}

// Neg sets e = -a and returns e.
func (e *G2) Neg(a *G2) *G2 {
	e.ensure()
	e.p.Neg(a.p)
	return e
}

// Set sets e = a and returns e.
func (e *G2) Set(a *G2) *G2 {
	e.ensure()
	e.p.Set(a.p)
	return e
}

// SetInfinity sets e to the identity element.
func (e *G2) SetInfinity() *G2 {
	e.ensure()
	e.p.SetInfinity()
	return e
}

// IsInfinity reports whether e is the identity.
func (e *G2) IsInfinity() bool { return e.p == nil || e.p.IsInfinity() }

// Equal reports whether e and a are the same group element.
func (e *G2) Equal(a *G2) bool {
	e.ensure()
	a.ensure()
	return e.p.Equal(a.p)
}

// Marshal encodes e uncompressed as x.x || x.y || y.x || y.y (128 bytes).
func (e *G2) Marshal() []byte {
	out := make([]byte, G2UncompressedSize)
	if e.IsInfinity() {
		return out
	}
	x, y := e.p.Affine()
	x.x.Marshal(out[0:32])
	x.y.Marshal(out[32:64])
	y.x.Marshal(out[64:96])
	y.y.Marshal(out[96:128])
	return out
}

// Unmarshal decodes an uncompressed encoding, validating twist-curve and
// subgroup membership (the twist has composite order, so the subgroup check
// is mandatory for soundness).
func (e *G2) Unmarshal(data []byte) error {
	if len(data) != G2UncompressedSize {
		return ErrMalformedPoint
	}
	e.ensure()
	x, y := newGFp2(), newGFp2()
	coords := []*gfP{&x.x, &x.y, &y.x, &y.y}
	zero := true
	for i, c := range coords {
		chunk := data[i*32 : (i+1)*32]
		if err := c.Unmarshal(chunk); err != nil {
			return err
		}
		if !allZero(chunk) {
			zero = false
		}
	}
	if zero {
		e.p.SetInfinity()
		return nil
	}
	e.p.SetAffine(x, y)
	if !e.p.IsOnCurve() {
		return ErrMalformedPoint
	}
	if !newTwistPoint().Mul(e.p, Order).IsInfinity() {
		return ErrMalformedPoint
	}
	return nil
}

// --- GT ---

func (e *GT) ensure() *GT {
	if e.p == nil {
		e.p = newGFp12().SetOne()
	}
	return e
}

// ScalarMult sets e = a^k and returns e.
func (e *GT) ScalarMult(a *GT, k *big.Int) *GT {
	e.ensure()
	e.p.Exp(a.p, k)
	return e
}

// Add sets e = a*b (the group operation, written additively for API symmetry
// with G1/G2) and returns e.
func (e *GT) Add(a, b *GT) *GT {
	e.ensure()
	e.p.Mul(a.p, b.p)
	return e
}

// Neg sets e = a^-1. In the cyclotomic subgroup inversion is conjugation.
func (e *GT) Neg(a *GT) *GT {
	e.ensure()
	e.p.Conjugate(a.p)
	return e
}

// Set sets e = a and returns e.
func (e *GT) Set(a *GT) *GT {
	e.ensure()
	e.p.Set(a.p)
	return e
}

// SetOne sets e to the identity element.
func (e *GT) SetOne() *GT {
	e.ensure()
	e.p.SetOne()
	return e
}

// IsOne reports whether e is the identity.
func (e *GT) IsOne() bool { return e.p == nil || e.p.IsOne() }

// Equal reports whether e and a are the same group element.
func (e *GT) Equal(a *GT) bool {
	e.ensure()
	a.ensure()
	return e.p.Equal(a.p)
}

// Marshal encodes e as 12 Fp coefficients (384 bytes), ordered from the
// omega part's tau^2 coefficient down to the constant term.
func (e *GT) Marshal() []byte {
	e.ensure()
	out := make([]byte, GTUncompressedSize)
	coeffs := e.coeffs()
	for i, c := range coeffs {
		c.Marshal(out[i*32 : (i+1)*32])
	}
	return out
}

func (e *GT) coeffs() []*gfP {
	return []*gfP{
		&e.p.x.x.x, &e.p.x.x.y, &e.p.x.y.x, &e.p.x.y.y, &e.p.x.z.x, &e.p.x.z.y,
		&e.p.y.x.x, &e.p.y.x.y, &e.p.y.y.x, &e.p.y.y.y, &e.p.y.z.x, &e.p.y.z.y,
	}
}

// Unmarshal decodes a 384-byte encoding. It validates field-element ranges
// and membership in the order-n subgroup.
func (e *GT) Unmarshal(data []byte) error {
	if len(data) != GTUncompressedSize {
		return ErrMalformedPoint
	}
	e.ensure()
	coeffs := e.coeffs()
	for i, c := range coeffs {
		if err := c.Unmarshal(data[i*32 : (i+1)*32]); err != nil {
			return err
		}
	}
	if !newGFp12().Exp(e.p, Order).IsOne() {
		return ErrMalformedPoint
	}
	return nil
}

// MarshalCompressed encodes e in 192 bytes using the torus (T2)
// representation: for a norm-1 element r = x + y*omega with y != 0,
// a = (1+x)/y in Fp6 determines r = (a^2 + tau + 2a*omega)/(a^2 - tau).
// This is the compression that makes the paper's private proof 288 bytes
// (3 compressed G1 points + one compressed GT element).
//
// The identity and -1 (the only norm-1 elements with y = 0) are rejected:
// they never occur as the Sigma-protocol commitment R = e(g1, eps)^z with
// z != 0 (GT has prime order n, and -1 has order 2 which does not divide n).
func (e *GT) MarshalCompressed() ([]byte, error) {
	e.ensure()
	if e.p.x.IsZero() {
		return nil, errors.New("bn256: GT element with trivial omega part is not torus-compressible")
	}
	yInv := newGFp6().Invert(&e.p.x)
	a := newGFp6().SetOne()
	a.Add(a, &e.p.y)
	a.Mul(a, yInv)

	out := make([]byte, GTCompressedSize)
	cs := []*gfP{&a.x.x, &a.x.y, &a.y.x, &a.y.y, &a.z.x, &a.z.y}
	for i, c := range cs {
		c.Marshal(out[i*32 : (i+1)*32])
	}
	return out, nil
}

// UnmarshalCompressed decodes a 192-byte torus encoding and validates
// subgroup membership.
func (e *GT) UnmarshalCompressed(data []byte) error {
	if len(data) != GTCompressedSize {
		return ErrMalformedPoint
	}
	e.ensure()
	a := newGFp6()
	cs := []*gfP{&a.x.x, &a.x.y, &a.y.x, &a.y.y, &a.z.x, &a.z.y}
	for i, c := range cs {
		if err := c.Unmarshal(data[i*32 : (i+1)*32]); err != nil {
			return err
		}
	}
	// r = (a^2 + tau + 2a*omega) / (a^2 - tau)
	a2 := newGFp6().Mul(a, a)
	tau := newGFp6()
	tau.y.SetOne() // the element tau
	num := newGFp6().Add(a2, tau)
	den := newGFp6().Sub(a2, tau)
	if den.IsZero() {
		return ErrMalformedPoint
	}
	den.Invert(den)

	x := newGFp6().Add(a, a)
	x.Mul(x, den)
	y := newGFp6().Mul(num, den)
	e.p.x.Set(x)
	e.p.y.Set(y)
	if !newGFp12().Exp(e.p, Order).IsOne() {
		return ErrMalformedPoint
	}
	return nil
}

// --- Pairing ---

// Pair computes the optimal ate pairing e(a, b).
func Pair(a *G1, b *G2) *GT {
	a.ensure()
	b.ensure()
	return &GT{p: pair(a.p, b.p)}
}

// MillerLoop returns the unreduced pairing value of (a, b). Products of
// Miller loop outputs can share a single final exponentiation via
// FinalExponentiate, which is how the verifier folds the four pairings of
// the paper's Eq. 2 into one.
func MillerLoop(a *G1, b *G2) *GT {
	a.ensure()
	b.ensure()
	return &GT{p: miller(b.p, a.p)}
}

// MillerBatch returns the product of the unreduced pairing values of all
// (a[i], b[i]) pairs, evaluating the per-pair Miller loops across at most
// workers goroutines (workers <= 0 selects GOMAXPROCS). The per-pair values
// land in index-keyed slots and are multiplied together serially in index
// order, so the product is identical to a loop of MillerLoop calls for any
// worker count. Like MillerLoop, the result awaits FinalExponentiate — this
// is how a batch verifier evaluates its 2N+1 loops on every core while still
// paying for just one shared final exponentiation. len(a) must equal len(b).
func MillerBatch(a []*G1, b []*G2, workers int) *GT {
	if len(a) != len(b) {
		panic("bn256: MillerBatch length mismatch")
	}
	// Materialize lazy internal points before the fan-out: ensure is the
	// only input mutation, and the same point may appear in many pairs.
	for i := range a {
		a[i].ensure()
		b[i].ensure()
	}
	partials := make([]*gfP12, len(a))
	parallel.For(workers, len(a), func(i int) {
		partials[i] = miller(b[i].p, a[i].p)
	})
	acc := newGFp12().SetOne()
	for _, f := range partials {
		acc.Mul(acc, f)
	}
	return &GT{p: acc}
}

// FinalExponentiate maps an unreduced pairing value into GT.
func FinalExponentiate(a *GT) *GT {
	a.ensure()
	return &GT{p: finalExponentiationFast(a.p)}
}

// PairingCheck reports whether the product of pairings over all pairs is the
// identity, sharing one final exponentiation.
func PairingCheck(a []*G1, b []*G2) bool {
	if len(a) != len(b) {
		return false
	}
	acc := newGFp12().SetOne()
	for i := range a {
		a[i].ensure()
		b[i].ensure()
		acc.Mul(acc, miller(b[i].p, a[i].p))
	}
	return finalExponentiationFast(acc).IsOne()
}
