package bn256

import "math/big"

// gfP2 implements the quadratic extension Fp2 = Fp[i]/(i^2 + 1).
// An element is x*i + y. The zero value is not valid; use newGFp2.
type gfP2 struct {
	x, y *big.Int
}

func newGFp2() *gfP2 {
	return &gfP2{x: new(big.Int), y: new(big.Int)}
}

func (e *gfP2) String() string {
	return "(" + e.x.String() + "i + " + e.y.String() + ")"
}

func (e *gfP2) Set(a *gfP2) *gfP2 {
	e.x.Set(a.x)
	e.y.Set(a.y)
	return e
}

func (e *gfP2) SetZero() *gfP2 {
	e.x.SetInt64(0)
	e.y.SetInt64(0)
	return e
}

func (e *gfP2) SetOne() *gfP2 {
	e.x.SetInt64(0)
	e.y.SetInt64(1)
	return e
}

// SetScalar embeds a base-field element.
func (e *gfP2) SetScalar(a *big.Int) *gfP2 {
	e.x.SetInt64(0)
	e.y.Mod(a, P)
	return e
}

func (e *gfP2) IsZero() bool { return e.x.Sign() == 0 && e.y.Sign() == 0 }

func (e *gfP2) IsOne() bool {
	return e.x.Sign() == 0 && e.y.Cmp(bigOne) == 0
}

func (e *gfP2) Equal(a *gfP2) bool {
	return e.x.Cmp(a.x) == 0 && e.y.Cmp(a.y) == 0
}

// Conjugate sets e to the Fp2 conjugate of a: x*i + y -> -x*i + y.
// This is also the p-power Frobenius on Fp2.
func (e *gfP2) Conjugate(a *gfP2) *gfP2 {
	e.y.Set(a.y)
	e.x.Neg(a.x)
	modP(e.x)
	return e
}

func (e *gfP2) Neg(a *gfP2) *gfP2 {
	e.x.Neg(a.x)
	modP(e.x)
	e.y.Neg(a.y)
	modP(e.y)
	return e
}

func (e *gfP2) Add(a, b *gfP2) *gfP2 {
	e.x.Add(a.x, b.x)
	modP(e.x)
	e.y.Add(a.y, b.y)
	modP(e.y)
	return e
}

func (e *gfP2) Sub(a, b *gfP2) *gfP2 {
	e.x.Sub(a.x, b.x)
	modP(e.x)
	e.y.Sub(a.y, b.y)
	modP(e.y)
	return e
}

func (e *gfP2) Double(a *gfP2) *gfP2 {
	e.x.Lsh(a.x, 1)
	modP(e.x)
	e.y.Lsh(a.y, 1)
	modP(e.y)
	return e
}

// Mul sets e = a*b:
//
//	(a.x*i + a.y)(b.x*i + b.y) = (a.x*b.y + a.y*b.x)i + (a.y*b.y - a.x*b.x).
func (e *gfP2) Mul(a, b *gfP2) *gfP2 {
	tx := new(big.Int).Mul(a.x, b.y)
	t := new(big.Int).Mul(a.y, b.x)
	tx.Add(tx, t)

	ty := new(big.Int).Mul(a.y, b.y)
	t.Mul(a.x, b.x)
	ty.Sub(ty, t)

	e.x.Mod(tx, P)
	e.y.Mod(ty, P)
	return e
}

// MulScalar sets e = a*b for a base-field scalar b.
func (e *gfP2) MulScalar(a *gfP2, b *big.Int) *gfP2 {
	tx := new(big.Int).Mul(a.x, b)
	ty := new(big.Int).Mul(a.y, b)
	e.x.Mod(tx, P)
	e.y.Mod(ty, P)
	return e
}

// MulXi sets e = a*xi where xi = i+9.
func (e *gfP2) MulXi(a *gfP2) *gfP2 {
	// (x*i + y)(i + 9) = (9x + y)i + (9y - x)
	tx := new(big.Int).Lsh(a.x, 3)
	tx.Add(tx, a.x)
	tx.Add(tx, a.y)

	ty := new(big.Int).Lsh(a.y, 3)
	ty.Add(ty, a.y)
	ty.Sub(ty, a.x)

	e.x.Mod(tx, P)
	e.y.Mod(ty, P)
	return e
}

// Square sets e = a^2 = 2*x*y*i + (y+x)(y-x).
func (e *gfP2) Square(a *gfP2) *gfP2 {
	t1 := new(big.Int).Sub(a.y, a.x)
	t2 := new(big.Int).Add(a.y, a.x)
	ty := t1.Mul(t1, t2)

	tx := new(big.Int).Mul(a.x, a.y)
	tx.Lsh(tx, 1)

	e.x.Mod(tx, P)
	e.y.Mod(ty, P)
	return e
}

// Invert sets e = 1/a. It panics if a is zero (division by zero in a
// cryptographic computation is a programming error, not an input error).
func (e *gfP2) Invert(a *gfP2) *gfP2 {
	// 1/(x*i + y) = (-x*i + y)/(x^2 + y^2)
	t := new(big.Int).Mul(a.y, a.y)
	t2 := new(big.Int).Mul(a.x, a.x)
	t.Add(t, t2)

	inv := new(big.Int).ModInverse(t, P)
	if inv == nil {
		panic("bn256: inverse of zero in Fp2")
	}

	e.x.Neg(a.x)
	e.x.Mul(e.x, inv)
	modP(e.x)

	e.y.Mul(a.y, inv)
	modP(e.y)
	return e
}

// Exp sets e = a^k by square-and-multiply.
func (e *gfP2) Exp(a *gfP2, k *big.Int) *gfP2 {
	sum := newGFp2().SetOne()
	t := newGFp2()
	for i := k.BitLen() - 1; i >= 0; i-- {
		t.Square(sum)
		if k.Bit(i) != 0 {
			sum.Mul(t, a)
		} else {
			sum.Set(t)
		}
	}
	return e.Set(sum)
}

var bigOne = big.NewInt(1)
