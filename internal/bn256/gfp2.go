package bn256

import "math/big"

// gfP2 implements the quadratic extension Fp2 = Fp[i]/(i^2 + 1).
// An element is x*i + y; both coefficients are Montgomery-form gfP values
// held inline, so a gfP2 is 64 bytes with no indirection.
type gfP2 struct {
	x, y gfP
}

func newGFp2() *gfP2 { return &gfP2{} }

func (e *gfP2) String() string {
	return "(" + e.x.String() + "i + " + e.y.String() + ")"
}

func (e *gfP2) Set(a *gfP2) *gfP2 {
	*e = *a
	return e
}

func (e *gfP2) SetZero() *gfP2 {
	*e = gfP2{}
	return e
}

func (e *gfP2) SetOne() *gfP2 {
	e.x.SetZero()
	e.y.SetOne()
	return e
}

// SetScalar embeds a base-field element.
func (e *gfP2) SetScalar(a *gfP) *gfP2 {
	e.x.SetZero()
	e.y.Set(a)
	return e
}

// SetBigs sets e from canonical big.Int coefficients.
func (e *gfP2) SetBigs(x, y *big.Int) *gfP2 {
	e.x.SetBig(x)
	e.y.SetBig(y)
	return e
}

// SetInt64s sets e from small integer coefficients.
func (e *gfP2) SetInt64s(x, y int64) *gfP2 {
	e.x.SetInt64(x)
	e.y.SetInt64(y)
	return e
}

func (e *gfP2) IsZero() bool { return e.x.IsZero() && e.y.IsZero() }

func (e *gfP2) IsOne() bool { return e.x.IsZero() && e.y.IsOne() }

func (e *gfP2) Equal(a *gfP2) bool { return *e == *a }

// Conjugate sets e to the Fp2 conjugate of a: x*i + y -> -x*i + y.
// This is also the p-power Frobenius on Fp2.
func (e *gfP2) Conjugate(a *gfP2) *gfP2 {
	e.y.Set(&a.y)
	gfpNeg(&e.x, &a.x)
	return e
}

func (e *gfP2) Neg(a *gfP2) *gfP2 {
	gfpNeg(&e.x, &a.x)
	gfpNeg(&e.y, &a.y)
	return e
}

func (e *gfP2) Add(a, b *gfP2) *gfP2 {
	gfpAdd(&e.x, &a.x, &b.x)
	gfpAdd(&e.y, &a.y, &b.y)
	return e
}

func (e *gfP2) Sub(a, b *gfP2) *gfP2 {
	gfpSub(&e.x, &a.x, &b.x)
	gfpSub(&e.y, &a.y, &b.y)
	return e
}

func (e *gfP2) Double(a *gfP2) *gfP2 {
	gfpDouble(&e.x, &a.x)
	gfpDouble(&e.y, &a.y)
	return e
}

// Mul sets e = a*b:
//
//	(a.x*i + a.y)(b.x*i + b.y) = (a.x*b.y + a.y*b.x)i + (a.y*b.y - a.x*b.x),
//
// computed with Karatsuba in three base-field multiplications:
// the cross term a.x*b.y + a.y*b.x = (a.x+a.y)(b.x+b.y) - a.x*b.x - a.y*b.y.
func (e *gfP2) Mul(a, b *gfP2) *gfP2 {
	var v0, v1, tx, ty gfP
	gfpMul(&v0, &a.x, &b.x)
	gfpMul(&v1, &a.y, &b.y)

	gfpAdd(&tx, &a.x, &a.y)
	gfpAdd(&ty, &b.x, &b.y)
	gfpMul(&tx, &tx, &ty)
	gfpSub(&tx, &tx, &v0)
	gfpSub(&tx, &tx, &v1)

	gfpSub(&ty, &v1, &v0)

	e.x = tx
	e.y = ty
	return e
}

// MulScalar sets e = a*b for a base-field scalar b.
func (e *gfP2) MulScalar(a *gfP2, b *gfP) *gfP2 {
	gfpMul(&e.x, &a.x, b)
	gfpMul(&e.y, &a.y, b)
	return e
}

// MulXi sets e = a*xi where xi = i+9.
func (e *gfP2) MulXi(a *gfP2) *gfP2 {
	// (x*i + y)(i + 9) = (9x + y)i + (9y - x)
	var tx, ty gfP
	gfpDouble(&tx, &a.x)
	gfpDouble(&tx, &tx)
	gfpDouble(&tx, &tx)
	gfpAdd(&tx, &tx, &a.x)
	gfpAdd(&tx, &tx, &a.y)

	gfpDouble(&ty, &a.y)
	gfpDouble(&ty, &ty)
	gfpDouble(&ty, &ty)
	gfpAdd(&ty, &ty, &a.y)
	gfpSub(&ty, &ty, &a.x)

	e.x = tx
	e.y = ty
	return e
}

// Square sets e = a^2 = 2*x*y*i + (y+x)(y-x).
func (e *gfP2) Square(a *gfP2) *gfP2 {
	var t1, t2, tx gfP
	gfpSub(&t1, &a.y, &a.x)
	gfpAdd(&t2, &a.y, &a.x)
	gfpMul(&t1, &t1, &t2)

	gfpMul(&tx, &a.x, &a.y)
	gfpDouble(&tx, &tx)

	e.x = tx
	e.y = t1
	return e
}

// Invert sets e = 1/a. It panics if a is zero (division by zero in a
// cryptographic computation is a programming error, not an input error).
func (e *gfP2) Invert(a *gfP2) *gfP2 {
	// 1/(x*i + y) = (-x*i + y)/(x^2 + y^2)
	var t, t2 gfP
	gfpMul(&t, &a.y, &a.y)
	gfpMul(&t2, &a.x, &a.x)
	gfpAdd(&t, &t, &t2)

	var inv gfP
	inv.Invert(&t)

	gfpNeg(&e.x, &a.x)
	gfpMul(&e.x, &e.x, &inv)
	gfpMul(&e.y, &a.y, &inv)
	return e
}

// Exp sets e = a^k by square-and-multiply.
func (e *gfP2) Exp(a *gfP2, k *big.Int) *gfP2 {
	sum := newGFp2().SetOne()
	t := newGFp2()
	for i := k.BitLen() - 1; i >= 0; i-- {
		t.Square(sum)
		if k.Bit(i) != 0 {
			sum.Mul(t, a)
		} else {
			sum.Set(t)
		}
	}
	return e.Set(sum)
}

var bigOne = big.NewInt(1)
