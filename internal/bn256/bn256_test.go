package bn256

import (
	"bytes"
	"crypto/rand"
	"math/big"
	"testing"
)

func TestG1MarshalRoundTrip(t *testing.T) {
	for i := 0; i < 10; i++ {
		_, p, err := RandomG1(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		var q G1
		if err := q.Unmarshal(p.Marshal()); err != nil {
			t.Fatal(err)
		}
		if !p.Equal(&q) {
			t.Fatal("G1 uncompressed round trip mismatch")
		}

		var r G1
		if err := r.UnmarshalCompressed(p.MarshalCompressed()); err != nil {
			t.Fatal(err)
		}
		if !p.Equal(&r) {
			t.Fatal("G1 compressed round trip mismatch")
		}
	}
}

func TestG1MarshalInfinity(t *testing.T) {
	inf := new(G1).SetInfinity()
	var q G1
	if err := q.Unmarshal(inf.Marshal()); err != nil {
		t.Fatal(err)
	}
	if !q.IsInfinity() {
		t.Fatal("infinity round trip failed")
	}
	var r G1
	if err := r.UnmarshalCompressed(inf.MarshalCompressed()); err != nil {
		t.Fatal(err)
	}
	if !r.IsInfinity() {
		t.Fatal("compressed infinity round trip failed")
	}
}

func TestG1UnmarshalRejectsOffCurve(t *testing.T) {
	bad := make([]byte, G1UncompressedSize)
	bad[31] = 5 // x = 5
	bad[63] = 1 // y = 1; 1 != 125+3
	var q G1
	if err := q.Unmarshal(bad); err == nil {
		t.Fatal("accepted an off-curve point")
	}
	if err := q.Unmarshal(bad[:10]); err == nil {
		t.Fatal("accepted a truncated encoding")
	}
}

func TestG2MarshalRoundTrip(t *testing.T) {
	for i := 0; i < 5; i++ {
		_, p, err := RandomG2(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		var q G2
		if err := q.Unmarshal(p.Marshal()); err != nil {
			t.Fatal(err)
		}
		if !p.Equal(&q) {
			t.Fatal("G2 round trip mismatch")
		}
	}
}

func TestG2UnmarshalRejectsWrongSubgroup(t *testing.T) {
	// Construct a twist point outside the order-n subgroup: a point of the
	// full twist group that survives multiplication by n.
	for j := int64(0); ; j++ {
		x := newGFp2().SetInt64s(j, 1)
		y2 := newGFp2().Square(x)
		y2.Mul(y2, x)
		y2.Add(y2, twistB)
		y := sqrtFp2(y2)
		if y == nil {
			continue
		}
		pt := newTwistPoint().SetAffine(x, y)
		if newTwistPoint().Mul(pt, Order).IsInfinity() {
			continue // accidentally in the subgroup; try next x
		}
		enc := make([]byte, G2UncompressedSize)
		px, py := pt.Affine()
		px.x.Marshal(enc[0:32])
		px.y.Marshal(enc[32:64])
		py.x.Marshal(enc[64:96])
		py.y.Marshal(enc[96:128])
		var q G2
		if err := q.Unmarshal(enc); err == nil {
			t.Fatal("accepted a twist point outside the order-n subgroup")
		}
		return
	}
}

func TestGTMarshalRoundTrip(t *testing.T) {
	k, _ := rand.Int(rand.Reader, Order)
	g := Pair(new(G1).ScalarBaseMult(big.NewInt(1)), new(G2).ScalarBaseMult(big.NewInt(1)))
	e := new(GT).ScalarMult(g, k)

	var q GT
	if err := q.Unmarshal(e.Marshal()); err != nil {
		t.Fatal(err)
	}
	if !e.Equal(&q) {
		t.Fatal("GT uncompressed round trip mismatch")
	}
}

func TestGTTorusCompression(t *testing.T) {
	g := Pair(new(G1).ScalarBaseMult(big.NewInt(1)), new(G2).ScalarBaseMult(big.NewInt(1)))
	for i := 0; i < 5; i++ {
		k, _ := rand.Int(rand.Reader, Order)
		if k.Sign() == 0 {
			continue
		}
		e := new(GT).ScalarMult(g, k)
		enc, err := e.MarshalCompressed()
		if err != nil {
			t.Fatal(err)
		}
		if len(enc) != GTCompressedSize {
			t.Fatalf("compressed GT size = %d, want %d", len(enc), GTCompressedSize)
		}
		var q GT
		if err := q.UnmarshalCompressed(enc); err != nil {
			t.Fatal(err)
		}
		if !e.Equal(&q) {
			t.Fatal("GT torus round trip mismatch")
		}
	}
}

func TestGTCompressedRejectsGarbage(t *testing.T) {
	junk := bytes.Repeat([]byte{0xAB}, GTCompressedSize)
	var q GT
	if err := q.UnmarshalCompressed(junk); err == nil {
		t.Fatal("accepted garbage as a compressed GT element")
	}
}

func TestHashToG1(t *testing.T) {
	p1 := HashToG1([]byte("hello"))
	p2 := HashToG1([]byte("hello"))
	if !p1.Equal(p2) {
		t.Fatal("HashToG1 not deterministic")
	}
	p3 := HashToG1([]byte("world"))
	if p1.Equal(p3) {
		t.Fatal("distinct inputs hashed to the same point")
	}
	if p1.IsInfinity() {
		t.Fatal("hashed to infinity")
	}
	if !p1.p.IsOnCurve() {
		t.Fatal("hashed point off curve")
	}
	// Hashed points must have order n (G1 is prime order, so automatic,
	// but verify anyway).
	if !new(G1).ScalarMult(p1, Order).IsInfinity() {
		t.Fatal("hashed point has wrong order")
	}
}

func TestScalarMultMatchesRepeatedAdd(t *testing.T) {
	p := HashToG1([]byte("base"))
	acc := new(G1).SetInfinity()
	for k := 1; k <= 10; k++ {
		acc.Add(acc, p)
		viaMul := new(G1).ScalarMult(p, big.NewInt(int64(k)))
		if !acc.Equal(viaMul) {
			t.Fatalf("scalar mult by %d disagrees with repeated addition", k)
		}
	}
}

func TestG1ScalarModOrder(t *testing.T) {
	k, _ := rand.Int(rand.Reader, Order)
	kPlusN := new(big.Int).Add(k, Order)
	a := new(G1).ScalarBaseMult(k)
	b := new(G1).ScalarBaseMult(kPlusN)
	if !a.Equal(b) {
		t.Fatal("scalar multiplication not periodic mod n")
	}
}

func TestMillerThenFinalEqualsPair(t *testing.T) {
	a, _ := rand.Int(rand.Reader, Order)
	b, _ := rand.Int(rand.Reader, Order)
	p := new(G1).ScalarBaseMult(a)
	q := new(G2).ScalarBaseMult(b)
	direct := Pair(p, q)
	viaMiller := FinalExponentiate(MillerLoop(p, q))
	if !direct.Equal(viaMiller) {
		t.Fatal("Pair != FinalExponentiate(MillerLoop)")
	}
}
