package bn256

// This file implements the optimized final-exponentiation hard part using
// the BN addition chain of Devegili, Scott and Dahab ("Implementing
// cryptographic pairings over Barreto-Naehrig curves"), built from three
// exponentiations by the curve parameter u plus Frobenius maps.
//
// Correctness does not rest on transcription: the package tests verify that
// finalExponentiationFast agrees with the naive square-and-multiply by the
// exact exponent (p^4-p^2+1)/n on random Miller-loop outputs, and the
// default pairing path uses the fast version only because that equivalence
// holds. BenchmarkAblationFinalExp quantifies the speedup.

// hardPartFast raises t (already in the cyclotomic subgroup, i.e. after the
// easy part) to (p^4 - p^2 + 1)/n.
func hardPartFast(t1 *gfP12) *gfP12 {
	fp := newGFp12().Frobenius(t1)
	fp2 := newGFp12().FrobeniusP2(t1)
	fp3 := newGFp12().Frobenius(fp2)

	fu := newGFp12().Exp(t1, u)
	fu2 := newGFp12().Exp(fu, u)
	fu3 := newGFp12().Exp(fu2, u)

	y3 := newGFp12().Frobenius(fu)
	fu2p := newGFp12().Frobenius(fu2)
	fu3p := newGFp12().Frobenius(fu3)
	y2 := newGFp12().FrobeniusP2(fu2)

	y0 := newGFp12().Mul(fp, fp2)
	y0.Mul(y0, fp3)

	y1 := newGFp12().Conjugate(t1)
	y5 := newGFp12().Conjugate(fu2)
	y3.Conjugate(y3)
	y4 := newGFp12().Mul(fu, fu2p)
	y4.Conjugate(y4)

	y6 := newGFp12().Mul(fu3, fu3p)
	y6.Conjugate(y6)

	t0 := newGFp12().Square(y6)
	t0.Mul(t0, y4)
	t0.Mul(t0, y5)
	out := newGFp12().Mul(y3, y5)
	out.Mul(out, t0)
	t0.Mul(t0, y2)
	out.Square(out)
	out.Mul(out, t0)
	out.Square(out)
	t0.Mul(out, y1)
	out.Mul(out, y0)
	t0.Square(t0)
	t0.Mul(t0, out)
	return t0
}

// finalExponentiationFast is the production final exponentiation: the same
// easy part as finalExponentiation, with the hard part replaced by the
// u-chain.
func finalExponentiationFast(f *gfP12) *gfP12 {
	t := newGFp12().Conjugate(f)
	inv := newGFp12().Invert(f)
	t.Mul(t, inv) // f^(p^6-1)

	t2 := newGFp12().FrobeniusP2(t)
	t.Mul(t, t2) // ^(p^2+1)

	return hardPartFast(t)
}
