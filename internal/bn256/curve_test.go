package bn256

import (
	"crypto/rand"
	"math/big"
	"testing"
)

func randCurvePoint(t *testing.T) *curvePoint {
	t.Helper()
	k, err := rand.Int(rand.Reader, Order)
	if err != nil {
		t.Fatal(err)
	}
	return newCurvePoint().Mul(g1Gen, k)
}

func randTwistPoint(t *testing.T) *twistPoint {
	t.Helper()
	k, err := rand.Int(rand.Reader, Order)
	if err != nil {
		t.Fatal(err)
	}
	return newTwistPoint().Mul(g2Gen, k)
}

func TestCurveGroupLaws(t *testing.T) {
	a, b, c := randCurvePoint(t), randCurvePoint(t), randCurvePoint(t)

	// Closure.
	sum := newCurvePoint().Add(a, b)
	if !sum.IsOnCurve() {
		t.Fatal("sum off curve")
	}
	// Commutativity.
	if !sum.Equal(newCurvePoint().Add(b, a)) {
		t.Fatal("addition not commutative")
	}
	// Associativity.
	l := newCurvePoint().Add(newCurvePoint().Add(a, b), c)
	r := newCurvePoint().Add(a, newCurvePoint().Add(b, c))
	if !l.Equal(r) {
		t.Fatal("addition not associative")
	}
	// Identity.
	inf := newCurvePoint().SetInfinity()
	if !newCurvePoint().Add(a, inf).Equal(a) {
		t.Fatal("a + O != a")
	}
	// Inverse.
	na := newCurvePoint().Neg(a)
	if !newCurvePoint().Add(a, na).IsInfinity() {
		t.Fatal("a + (-a) != O")
	}
	// Double consistency.
	if !newCurvePoint().Double(a).Equal(newCurvePoint().Add(a, a)) {
		t.Fatal("2a != a + a")
	}
	// Equal must see through different Jacobian representations: a added
	// to infinity via Add keeps z=..., while Mul-by-1 normalizes
	// differently.
	viaMul := newCurvePoint().Mul(a, big.NewInt(1))
	if !viaMul.Equal(a) {
		t.Fatal("representation-sensitive equality")
	}
}

func TestTwistGroupLaws(t *testing.T) {
	a, b, c := randTwistPoint(t), randTwistPoint(t), randTwistPoint(t)

	sum := newTwistPoint().Add(a, b)
	if !sum.IsOnCurve() {
		t.Fatal("sum off twist")
	}
	if !sum.Equal(newTwistPoint().Add(b, a)) {
		t.Fatal("twist addition not commutative")
	}
	l := newTwistPoint().Add(newTwistPoint().Add(a, b), c)
	r := newTwistPoint().Add(a, newTwistPoint().Add(b, c))
	if !l.Equal(r) {
		t.Fatal("twist addition not associative")
	}
	inf := newTwistPoint().SetInfinity()
	if !newTwistPoint().Add(a, inf).Equal(a) {
		t.Fatal("a + O != a on twist")
	}
	na := newTwistPoint().Neg(a)
	if !newTwistPoint().Add(a, na).IsInfinity() {
		t.Fatal("a + (-a) != O on twist")
	}
	if !newTwistPoint().Double(a).Equal(newTwistPoint().Add(a, a)) {
		t.Fatal("2a != a + a on twist")
	}
}

func TestScalarMultDistributes(t *testing.T) {
	a, _ := rand.Int(rand.Reader, Order)
	b, _ := rand.Int(rand.Reader, Order)
	sum := new(big.Int).Add(a, b)

	// (a+b)G = aG + bG on both groups.
	g1ab := newCurvePoint().Mul(g1Gen, sum)
	g1a := newCurvePoint().Mul(g1Gen, a)
	g1b := newCurvePoint().Mul(g1Gen, b)
	if !g1ab.Equal(newCurvePoint().Add(g1a, g1b)) {
		t.Fatal("G1 scalar mult not additive")
	}
	g2ab := newTwistPoint().Mul(g2Gen, sum)
	g2a := newTwistPoint().Mul(g2Gen, a)
	g2b := newTwistPoint().Mul(g2Gen, b)
	if !g2ab.Equal(newTwistPoint().Add(g2a, g2b)) {
		t.Fatal("G2 scalar mult not additive")
	}
}

func TestNegativeScalarMult(t *testing.T) {
	k := big.NewInt(-5)
	viaNeg := newCurvePoint().Mul(g1Gen, k)
	pos := newCurvePoint().Mul(g1Gen, big.NewInt(5))
	pos.Neg(pos)
	if !viaNeg.Equal(pos) {
		t.Fatal("(-5)G != -(5G)")
	}
	tw := newTwistPoint().Mul(g2Gen, k)
	twPos := newTwistPoint().Mul(g2Gen, big.NewInt(5))
	twPos.Neg(twPos)
	if !tw.Equal(twPos) {
		t.Fatal("(-5)H != -(5H) on twist")
	}
}

func TestAffineOfInfinityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	newCurvePoint().SetInfinity().Affine()
}

func TestDoubleOfYZeroIsInfinity(t *testing.T) {
	// No order-2 points exist on either curve (odd group orders), but the
	// doubling code must handle the z=0 input gracefully.
	inf := newCurvePoint().SetInfinity()
	if !newCurvePoint().Double(inf).IsInfinity() {
		t.Fatal("2*O != O")
	}
	tinf := newTwistPoint().SetInfinity()
	if !newTwistPoint().Double(tinf).IsInfinity() {
		t.Fatal("2*O != O on twist")
	}
}

func TestGTGroupProperties(t *testing.T) {
	g := Pair(new(G1).ScalarBaseMult(big.NewInt(1)), new(G2).ScalarBaseMult(big.NewInt(1)))
	a, _ := rand.Int(rand.Reader, Order)
	b, _ := rand.Int(rand.Reader, Order)

	ga := new(GT).ScalarMult(g, a)
	gb := new(GT).ScalarMult(g, b)
	ab := new(big.Int).Add(a, b)
	gab := new(GT).ScalarMult(g, ab)
	if !gab.Equal(new(GT).Add(ga, gb)) {
		t.Fatal("GT exponent addition broken")
	}
	// Inverse via conjugation (cyclotomic subgroup property).
	inv := new(GT).Neg(ga)
	if !new(GT).Add(ga, inv).IsOne() {
		t.Fatal("GT conjugate is not the inverse")
	}
}
