package bn256

// This file implements the optimal ate pairing
//
//	e(P, Q) = f_{6u+2,Q}(P) * l_{[6u+2]Q, pi(Q)}(P) * l_{[6u+2]Q+pi(Q), -pi^2(Q)}(P)
//
// raised to (p^12-1)/n, with Q on the sextic twist and lines evaluated at P
// through the untwist map (x, y) -> (x*w^2, y*w^3), w^6 = xi.
//
// The Miller loop keeps the accumulator point T in affine coordinates: each
// step costs one Fp2 inversion, which at ~100 steps total is negligible next
// to the Fp12 arithmetic, and affine line functions are far easier to audit:
//
//	tangent/chord with slope lambda through T evaluated at P = (xP, yP):
//	    l(P) = yP - lambda*xP*w + (lambda*xT - yT)*w^3.

// affTwist is an affine twist point used by the Miller loop. infinity is
// tracked explicitly.
type affTwist struct {
	x, y     gfP2
	infinity bool
}

func affFromTwist(t *twistPoint) *affTwist {
	if t.IsInfinity() {
		return &affTwist{infinity: true}
	}
	x, y := t.Affine()
	a := &affTwist{}
	a.x.Set(x)
	a.y.Set(y)
	return a
}

// lineEval builds the sparse Fp12 element a + b*w + c*w^3 with
// a in Fp, b, c in Fp2. In the tower Fp12 = Fp6[w], Fp6 = Fp2[w^2]:
// w^0 -> y.z, w^1 -> x.z, w^2 -> y.y, w^3 -> x.y.
func lineEval(l *gfP12, a *gfP, b, c *gfP2) *gfP12 {
	l.SetZero()
	l.y.z.SetScalar(a)
	l.x.z.Set(b)
	l.x.y.Set(c)
	return l
}

// lineDouble writes the tangent line at T evaluated at P into l and replaces
// T with 2T (affine). If the tangent is vertical (yT = 0), it returns the
// vertical line and sets T to infinity.
func lineDouble(l *gfP12, t *affTwist, px, py *gfP) *gfP12 {
	if t.infinity {
		return l.SetOne()
	}
	if t.y.IsZero() {
		verticalLine(l, &t.x, px)
		t.infinity = true
		return l
	}
	// lambda = 3*xT^2 / (2*yT)
	var num, den, lambda gfP2
	num.Square(&t.x)
	den.Double(&num)
	num.Add(&den, &num)
	den.Double(&t.y)
	lambda.Invert(&den)
	lambda.Mul(&lambda, &num)

	lineFromSlope(l, &lambda, t, px, py)

	// x3 = lambda^2 - 2 xT ; y3 = lambda (xT - x3) - yT
	var x3, y3, tx2 gfP2
	x3.Square(&lambda)
	tx2.Double(&t.x)
	x3.Sub(&x3, &tx2)
	y3.Sub(&t.x, &x3)
	y3.Mul(&y3, &lambda)
	y3.Sub(&y3, &t.y)
	t.x, t.y = x3, y3
	return l
}

// lineAdd writes the chord line through T and Q evaluated at P into l and
// replaces T with T+Q (affine). Degenerate cases (T = Q, T = -Q, infinities)
// fall back to the tangent or the vertical line.
func lineAdd(l *gfP12, t *affTwist, q *affTwist, px, py *gfP) *gfP12 {
	if q.infinity {
		return l.SetOne()
	}
	if t.infinity {
		t.x.Set(&q.x)
		t.y.Set(&q.y)
		t.infinity = false
		return l.SetOne()
	}
	if t.x.Equal(&q.x) {
		if t.y.Equal(&q.y) {
			return lineDouble(l, t, px, py)
		}
		// T = -Q: vertical line, T becomes infinity.
		verticalLine(l, &t.x, px)
		t.infinity = true
		return l
	}
	// lambda = (yQ - yT) / (xQ - xT)
	var num, den, lambda gfP2
	num.Sub(&q.y, &t.y)
	den.Sub(&q.x, &t.x)
	lambda.Invert(&den)
	lambda.Mul(&lambda, &num)

	lineFromSlope(l, &lambda, t, px, py)

	var x3, y3 gfP2
	x3.Square(&lambda)
	x3.Sub(&x3, &t.x)
	x3.Sub(&x3, &q.x)
	y3.Sub(&t.x, &x3)
	y3.Mul(&y3, &lambda)
	y3.Sub(&y3, &t.y)
	t.x, t.y = x3, y3
	return l
}

// lineFromSlope evaluates the line with slope lambda through T at P:
// l = yP - lambda*xP*w + (lambda*xT - yT)*w^3.
func lineFromSlope(l *gfP12, lambda *gfP2, t *affTwist, px, py *gfP) *gfP12 {
	var b, c gfP2
	b.MulScalar(lambda, px)
	b.Neg(&b)
	c.Mul(lambda, &t.x)
	c.Sub(&c, &t.y)
	return lineEval(l, py, &b, &c)
}

// verticalLine evaluates the vertical line x = xT at P: l = xP - xT*w^2.
func verticalLine(l *gfP12, xT *gfP2, px *gfP) *gfP12 {
	l.SetZero()
	l.y.z.SetScalar(px)
	l.y.y.Neg(xT)
	return l
}

// frobTwist computes pi(Q) = (conj(x)*xi^((p-1)/3), conj(y)*xi^((p-1)/2))
// for an affine twist point.
func frobTwist(q *affTwist) *affTwist {
	r := &affTwist{}
	r.x.Conjugate(&q.x)
	r.x.Mul(&r.x, xiToPMinus1Over3)
	r.y.Conjugate(&q.y)
	r.y.Mul(&r.y, xiToPMinus1Over2)
	return r
}

// negFrobTwistSquared computes -pi^2(Q) = (x*xi^((p^2-1)/3), y), using
// xi^((p^2-1)/2) = -1 (validated at init).
func negFrobTwistSquared(q *affTwist) *affTwist {
	r := &affTwist{}
	r.x.MulScalar(&q.x, &xiToPSquaredMinus1Over3)
	r.y.Set(&q.y)
	return r
}

// miller computes the Miller loop value f_{6u+2,Q}(P) with the two optimal
// ate adjustment lines, before final exponentiation.
func miller(q *twistPoint, c *curvePoint) *gfP12 {
	f := newGFp12().SetOne()
	if q.IsInfinity() || c.IsInfinity() {
		return f
	}
	px, py := c.Affine()
	qa := affFromTwist(q)
	t := &affTwist{}
	t.x.Set(&qa.x)
	t.y.Set(&qa.y)

	l := newGFp12()
	for i := loopCount.BitLen() - 2; i >= 0; i-- {
		f.Square(f)
		f.Mul(f, lineDouble(l, t, px, py))
		if loopCount.Bit(i) != 0 {
			f.Mul(f, lineAdd(l, t, qa, px, py))
		}
	}

	q1 := frobTwist(qa)
	q2 := negFrobTwistSquared(qa)
	f.Mul(f, lineAdd(l, t, q1, px, py))
	f.Mul(f, lineAdd(l, t, q2, px, py))
	return f
}

// finalExponentiation raises f to (p^12-1)/n with a naive hard part: a
// direct square-and-multiply by the exact exponent (p^4-p^2+1)/n. It is
// kept as the unconditionally-correct reference implementation; the
// production path (finalExponentiationFast in finalexp.go) must agree with
// it on random inputs, which TestFastFinalExpMatchesNaive enforces.
func finalExponentiation(f *gfP12) *gfP12 {
	t := newGFp12().Conjugate(f)
	inv := newGFp12().Invert(f)
	t.Mul(t, inv) // f^(p^6-1)

	t2 := newGFp12().FrobeniusP2(t)
	t.Mul(t, t2) // ^(p^2+1)

	return newGFp12().Exp(t, hardExponent)
}

// pair computes the full optimal ate pairing on internal representations.
func pair(c *curvePoint, q *twistPoint) *gfP12 {
	return finalExponentiationFast(miller(q, c))
}
