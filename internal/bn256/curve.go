package bn256

import "math/big"

// curvePoint is a point on E: y^2 = x^3 + 3 over Fp in Jacobian coordinates
// (x, y, z); the affine point is (x/z^2, y/z^3), and z = 0 encodes the point
// at infinity. Coordinates are Montgomery-form gfP values held inline, so
// the group operations below are allocation-free.
type curvePoint struct {
	x, y, z gfP
}

func newCurvePoint() *curvePoint { return &curvePoint{} }

func (c *curvePoint) Set(a *curvePoint) *curvePoint {
	*c = *a
	return c
}

func (c *curvePoint) SetInfinity() *curvePoint {
	c.x.SetOne()
	c.y.SetOne()
	c.z.SetZero()
	return c
}

func (c *curvePoint) IsInfinity() bool { return c.z.IsZero() }

// SetAffine sets c to the affine point (x, y) without validation.
func (c *curvePoint) SetAffine(x, y *gfP) *curvePoint {
	c.x.Set(x)
	c.y.Set(y)
	c.z.SetOne()
	return c
}

// IsOnCurve reports whether c satisfies the curve equation (infinity counts).
func (c *curvePoint) IsOnCurve() bool {
	if c.IsInfinity() {
		return true
	}
	x, y := c.Affine()
	var lhs, rhs gfP
	gfpMul(&lhs, y, y)
	gfpMul(&rhs, x, x)
	gfpMul(&rhs, &rhs, x)
	gfpAdd(&rhs, &rhs, &gfpCurveB)
	return lhs == rhs
}

// Affine returns the affine coordinates of c. It panics on infinity.
func (c *curvePoint) Affine() (x, y *gfP) {
	if c.IsInfinity() {
		panic("bn256: affine coordinates of the point at infinity")
	}
	var zInv, zInv2 gfP
	zInv.Invert(&c.z)
	gfpMul(&zInv2, &zInv, &zInv)
	x, y = new(gfP), new(gfP)
	gfpMul(x, &c.x, &zInv2)
	gfpMul(&zInv2, &zInv2, &zInv)
	gfpMul(y, &c.y, &zInv2)
	return x, y
}

// MakeAffine normalizes c in place to z = 1 (or infinity).
func (c *curvePoint) MakeAffine() *curvePoint {
	if c.IsInfinity() || c.z.IsOne() {
		return c
	}
	x, y := c.Affine()
	c.x.Set(x)
	c.y.Set(y)
	c.z.SetOne()
	return c
}

func (c *curvePoint) Equal(a *curvePoint) bool {
	if c.IsInfinity() || a.IsInfinity() {
		return c.IsInfinity() == a.IsInfinity()
	}
	// Compare via cross-multiplication to be representation independent
	// without inversions: x1*z2^2 == x2*z1^2 and y1*z2^3 == y2*z1^3.
	var z1z1, z2z2, l, r gfP
	gfpMul(&z1z1, &c.z, &c.z)
	gfpMul(&z2z2, &a.z, &a.z)
	gfpMul(&l, &c.x, &z2z2)
	gfpMul(&r, &a.x, &z1z1)
	if l != r {
		return false
	}
	gfpMul(&z1z1, &z1z1, &c.z)
	gfpMul(&z2z2, &z2z2, &a.z)
	gfpMul(&l, &c.y, &z2z2)
	gfpMul(&r, &a.y, &z1z1)
	return l == r
}

func (c *curvePoint) Neg(a *curvePoint) *curvePoint {
	c.x.Set(&a.x)
	gfpNeg(&c.y, &a.y)
	c.z.Set(&a.z)
	return c
}

// Double sets c = 2a using the standard Jacobian doubling formulas for a = 0
// curves (dbl-2009-l).
func (c *curvePoint) Double(a *curvePoint) *curvePoint {
	if a.IsInfinity() {
		return c.SetInfinity()
	}
	var A, B, C, d, e, f gfP
	gfpMul(&A, &a.x, &a.x)
	gfpMul(&B, &a.y, &a.y)
	gfpMul(&C, &B, &B)

	gfpAdd(&d, &a.x, &B)
	gfpMul(&d, &d, &d)
	gfpSub(&d, &d, &A)
	gfpSub(&d, &d, &C)
	gfpDouble(&d, &d)

	gfpDouble(&e, &A)
	gfpAdd(&e, &e, &A)

	gfpMul(&f, &e, &e)

	var x3, y3, z3, t gfP
	gfpDouble(&t, &d)
	gfpSub(&x3, &f, &t)

	gfpSub(&y3, &d, &x3)
	gfpMul(&y3, &y3, &e)
	gfpDouble(&t, &C)
	gfpDouble(&t, &t)
	gfpDouble(&t, &t)
	gfpSub(&y3, &y3, &t)

	gfpMul(&z3, &a.y, &a.z)
	gfpDouble(&z3, &z3)

	c.x, c.y, c.z = x3, y3, z3
	return c
}

// Add sets c = a + b using the general Jacobian addition formulas
// (add-2007-bl).
func (c *curvePoint) Add(a, b *curvePoint) *curvePoint {
	if a.IsInfinity() {
		return c.Set(b)
	}
	if b.IsInfinity() {
		return c.Set(a)
	}

	var z1z1, z2z2, u1, u2, s1, s2, h, r gfP
	gfpMul(&z1z1, &a.z, &a.z)
	gfpMul(&z2z2, &b.z, &b.z)

	gfpMul(&u1, &a.x, &z2z2)
	gfpMul(&u2, &b.x, &z1z1)

	gfpMul(&s1, &a.y, &b.z)
	gfpMul(&s1, &s1, &z2z2)
	gfpMul(&s2, &b.y, &a.z)
	gfpMul(&s2, &s2, &z1z1)

	gfpSub(&h, &u2, &u1)
	gfpSub(&r, &s2, &s1)

	if h.IsZero() {
		if r.IsZero() {
			return c.Double(a)
		}
		return c.SetInfinity()
	}
	gfpDouble(&r, &r)

	var i, j, v gfP
	gfpDouble(&i, &h)
	gfpMul(&i, &i, &i)
	gfpMul(&j, &h, &i)

	gfpMul(&v, &u1, &i)

	var x3, y3, z3, t gfP
	gfpMul(&x3, &r, &r)
	gfpSub(&x3, &x3, &j)
	gfpDouble(&t, &v)
	gfpSub(&x3, &x3, &t)

	gfpSub(&y3, &v, &x3)
	gfpMul(&y3, &y3, &r)
	gfpMul(&t, &s1, &j)
	gfpDouble(&t, &t)
	gfpSub(&y3, &y3, &t)

	gfpAdd(&z3, &a.z, &b.z)
	gfpMul(&z3, &z3, &z3)
	gfpSub(&z3, &z3, &z1z1)
	gfpSub(&z3, &z3, &z2z2)
	gfpMul(&z3, &z3, &h)

	c.x, c.y, c.z = x3, y3, z3
	return c
}

// Mul sets c = k*a by double-and-add.
func (c *curvePoint) Mul(a *curvePoint, k *big.Int) *curvePoint {
	if k.Sign() < 0 {
		na := newCurvePoint().Neg(a)
		return c.Mul(na, new(big.Int).Neg(k))
	}
	sum := newCurvePoint().SetInfinity()
	for i := k.BitLen() - 1; i >= 0; i-- {
		sum.Double(sum)
		if k.Bit(i) != 0 {
			sum.Add(sum, a)
		}
	}
	return c.Set(sum)
}
