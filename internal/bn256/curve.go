package bn256

import "math/big"

// curvePoint is a point on E: y^2 = x^3 + 3 over Fp in Jacobian coordinates
// (x, y, z); the affine point is (x/z^2, y/z^3), and z = 0 encodes the point
// at infinity.
type curvePoint struct {
	x, y, z *big.Int
}

func newCurvePoint() *curvePoint {
	return &curvePoint{x: new(big.Int), y: new(big.Int), z: new(big.Int)}
}

func (c *curvePoint) Set(a *curvePoint) *curvePoint {
	c.x.Set(a.x)
	c.y.Set(a.y)
	c.z.Set(a.z)
	return c
}

func (c *curvePoint) SetInfinity() *curvePoint {
	c.x.SetInt64(1)
	c.y.SetInt64(1)
	c.z.SetInt64(0)
	return c
}

func (c *curvePoint) IsInfinity() bool { return c.z.Sign() == 0 }

// SetAffine sets c to the affine point (x, y) without validation.
func (c *curvePoint) SetAffine(x, y *big.Int) *curvePoint {
	c.x.Mod(x, P)
	c.y.Mod(y, P)
	c.z.SetInt64(1)
	return c
}

// IsOnCurve reports whether c satisfies the curve equation (infinity counts).
func (c *curvePoint) IsOnCurve() bool {
	if c.IsInfinity() {
		return true
	}
	x, y := c.Affine()
	lhs := new(big.Int).Mul(y, y)
	modP(lhs)
	rhs := new(big.Int).Mul(x, x)
	rhs.Mul(rhs, x)
	rhs.Add(rhs, curveB)
	modP(rhs)
	return lhs.Cmp(rhs) == 0
}

// Affine returns the affine coordinates of c. It panics on infinity.
func (c *curvePoint) Affine() (x, y *big.Int) {
	if c.IsInfinity() {
		panic("bn256: affine coordinates of the point at infinity")
	}
	zInv := new(big.Int).ModInverse(c.z, P)
	zInv2 := new(big.Int).Mul(zInv, zInv)
	x = new(big.Int).Mul(c.x, zInv2)
	modP(x)
	zInv2.Mul(zInv2, zInv)
	y = new(big.Int).Mul(c.y, zInv2)
	modP(y)
	return x, y
}

// MakeAffine normalizes c in place to z = 1 (or infinity).
func (c *curvePoint) MakeAffine() *curvePoint {
	if c.IsInfinity() || c.z.Cmp(bigOne) == 0 {
		return c
	}
	x, y := c.Affine()
	c.x.Set(x)
	c.y.Set(y)
	c.z.SetInt64(1)
	return c
}

func (c *curvePoint) Equal(a *curvePoint) bool {
	if c.IsInfinity() || a.IsInfinity() {
		return c.IsInfinity() == a.IsInfinity()
	}
	// Compare in affine form to be representation independent.
	cx, cy := c.Affine()
	ax, ay := a.Affine()
	return cx.Cmp(ax) == 0 && cy.Cmp(ay) == 0
}

func (c *curvePoint) Neg(a *curvePoint) *curvePoint {
	c.x.Set(a.x)
	c.y.Neg(a.y)
	modP(c.y)
	c.z.Set(a.z)
	return c
}

// Double sets c = 2a using the standard Jacobian doubling formulas for a = 0
// curves (dbl-2009-l).
func (c *curvePoint) Double(a *curvePoint) *curvePoint {
	if a.IsInfinity() {
		return c.SetInfinity()
	}
	A := new(big.Int).Mul(a.x, a.x)
	modP(A)
	B := new(big.Int).Mul(a.y, a.y)
	modP(B)
	C := new(big.Int).Mul(B, B)
	modP(C)

	d := new(big.Int).Add(a.x, B)
	d.Mul(d, d)
	d.Sub(d, A)
	d.Sub(d, C)
	d.Lsh(d, 1)
	modP(d)

	e := new(big.Int).Lsh(A, 1)
	e.Add(e, A)
	modP(e)

	f := new(big.Int).Mul(e, e)
	modP(f)

	x3 := new(big.Int).Sub(f, new(big.Int).Lsh(d, 1))
	modP(x3)

	y3 := new(big.Int).Sub(d, x3)
	y3.Mul(y3, e)
	y3.Sub(y3, new(big.Int).Lsh(C, 3))
	modP(y3)

	z3 := new(big.Int).Mul(a.y, a.z)
	z3.Lsh(z3, 1)
	modP(z3)

	c.x.Set(x3)
	c.y.Set(y3)
	c.z.Set(z3)
	return c
}

// Add sets c = a + b using the general Jacobian addition formulas
// (add-2007-bl).
func (c *curvePoint) Add(a, b *curvePoint) *curvePoint {
	if a.IsInfinity() {
		return c.Set(b)
	}
	if b.IsInfinity() {
		return c.Set(a)
	}

	z1z1 := new(big.Int).Mul(a.z, a.z)
	modP(z1z1)
	z2z2 := new(big.Int).Mul(b.z, b.z)
	modP(z2z2)

	u1 := new(big.Int).Mul(a.x, z2z2)
	modP(u1)
	u2 := new(big.Int).Mul(b.x, z1z1)
	modP(u2)

	s1 := new(big.Int).Mul(a.y, b.z)
	s1.Mul(s1, z2z2)
	modP(s1)
	s2 := new(big.Int).Mul(b.y, a.z)
	s2.Mul(s2, z1z1)
	modP(s2)

	h := new(big.Int).Sub(u2, u1)
	modP(h)
	r := new(big.Int).Sub(s2, s1)
	modP(r)

	if h.Sign() == 0 {
		if r.Sign() == 0 {
			return c.Double(a)
		}
		return c.SetInfinity()
	}
	r.Lsh(r, 1)
	modP(r)

	i := new(big.Int).Lsh(h, 1)
	i.Mul(i, i)
	modP(i)
	j := new(big.Int).Mul(h, i)
	modP(j)

	v := new(big.Int).Mul(u1, i)
	modP(v)

	x3 := new(big.Int).Mul(r, r)
	x3.Sub(x3, j)
	x3.Sub(x3, new(big.Int).Lsh(v, 1))
	modP(x3)

	y3 := new(big.Int).Sub(v, x3)
	y3.Mul(y3, r)
	t := new(big.Int).Mul(s1, j)
	t.Lsh(t, 1)
	y3.Sub(y3, t)
	modP(y3)

	z3 := new(big.Int).Add(a.z, b.z)
	z3.Mul(z3, z3)
	z3.Sub(z3, z1z1)
	z3.Sub(z3, z2z2)
	z3.Mul(z3, h)
	modP(z3)

	c.x.Set(x3)
	c.y.Set(y3)
	c.z.Set(z3)
	return c
}

// Mul sets c = k*a by double-and-add.
func (c *curvePoint) Mul(a *curvePoint, k *big.Int) *curvePoint {
	sum := newCurvePoint().SetInfinity()
	if k.Sign() < 0 {
		na := newCurvePoint().Neg(a)
		return c.Mul(na, new(big.Int).Neg(k))
	}
	for i := k.BitLen() - 1; i >= 0; i-- {
		sum.Double(sum)
		if k.Bit(i) != 0 {
			sum.Add(sum, a)
		}
	}
	return c.Set(sum)
}
