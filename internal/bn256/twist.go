package bn256

import "math/big"

// twistPoint is a point on the sextic twist E': y^2 = x^3 + 3/xi over Fp2,
// in Jacobian coordinates. z = 0 (both components) encodes infinity.
type twistPoint struct {
	x, y, z gfP2
}

func newTwistPoint() *twistPoint { return &twistPoint{} }

func (t *twistPoint) Set(a *twistPoint) *twistPoint {
	*t = *a
	return t
}

func (t *twistPoint) SetInfinity() *twistPoint {
	t.x.SetOne()
	t.y.SetOne()
	t.z.SetZero()
	return t
}

func (t *twistPoint) IsInfinity() bool { return t.z.IsZero() }

func (t *twistPoint) SetAffine(x, y *gfP2) *twistPoint {
	t.x.Set(x)
	t.y.Set(y)
	t.z.SetOne()
	return t
}

// IsOnCurve reports whether t satisfies the twist equation.
func (t *twistPoint) IsOnCurve() bool {
	if t.IsInfinity() {
		return true
	}
	x, y := t.Affine()
	var lhs, rhs gfP2
	lhs.Square(y)
	rhs.Square(x)
	rhs.Mul(&rhs, x)
	rhs.Add(&rhs, twistB)
	return lhs.Equal(&rhs)
}

// Affine returns the affine coordinates of t. It panics on infinity.
func (t *twistPoint) Affine() (x, y *gfP2) {
	if t.IsInfinity() {
		panic("bn256: affine coordinates of the twist point at infinity")
	}
	var zInv, zInv2 gfP2
	zInv.Invert(&t.z)
	zInv2.Square(&zInv)
	x, y = newGFp2(), newGFp2()
	x.Mul(&t.x, &zInv2)
	zInv2.Mul(&zInv2, &zInv)
	y.Mul(&t.y, &zInv2)
	return x, y
}

// MakeAffine normalizes t in place to z = 1 (or infinity).
func (t *twistPoint) MakeAffine() *twistPoint {
	if t.IsInfinity() || t.z.IsOne() {
		return t
	}
	x, y := t.Affine()
	t.x.Set(x)
	t.y.Set(y)
	t.z.SetOne()
	return t
}

func (t *twistPoint) Equal(a *twistPoint) bool {
	if t.IsInfinity() || a.IsInfinity() {
		return t.IsInfinity() == a.IsInfinity()
	}
	// Cross-multiplied comparison, representation independent without
	// inversions: x1*z2^2 == x2*z1^2 and y1*z2^3 == y2*z1^3.
	var z1z1, z2z2, l, r gfP2
	z1z1.Square(&t.z)
	z2z2.Square(&a.z)
	l.Mul(&t.x, &z2z2)
	r.Mul(&a.x, &z1z1)
	if !l.Equal(&r) {
		return false
	}
	z1z1.Mul(&z1z1, &t.z)
	z2z2.Mul(&z2z2, &a.z)
	l.Mul(&t.y, &z2z2)
	r.Mul(&a.y, &z1z1)
	return l.Equal(&r)
}

func (t *twistPoint) Neg(a *twistPoint) *twistPoint {
	t.x.Set(&a.x)
	t.y.Neg(&a.y)
	t.z.Set(&a.z)
	return t
}

// Double sets t = 2a (Jacobian, a = 0 curve).
func (t *twistPoint) Double(a *twistPoint) *twistPoint {
	if a.IsInfinity() {
		return t.SetInfinity()
	}
	var A, B, C, d, e, f gfP2
	A.Square(&a.x)
	B.Square(&a.y)
	C.Square(&B)

	d.Add(&a.x, &B)
	d.Square(&d)
	d.Sub(&d, &A)
	d.Sub(&d, &C)
	d.Double(&d)

	e.Double(&A)
	e.Add(&e, &A)

	f.Square(&e)

	var x3, y3, z3, c8 gfP2
	x3.Double(&d)
	x3.Sub(&f, &x3)

	c8.Double(&C)
	c8.Double(&c8)
	c8.Double(&c8)
	y3.Sub(&d, &x3)
	y3.Mul(&y3, &e)
	y3.Sub(&y3, &c8)

	z3.Mul(&a.y, &a.z)
	z3.Double(&z3)

	t.x, t.y, t.z = x3, y3, z3
	return t
}

// Add sets t = a + b (general Jacobian addition).
func (t *twistPoint) Add(a, b *twistPoint) *twistPoint {
	if a.IsInfinity() {
		return t.Set(b)
	}
	if b.IsInfinity() {
		return t.Set(a)
	}

	var z1z1, z2z2, u1, u2, s1, s2, h, r gfP2
	z1z1.Square(&a.z)
	z2z2.Square(&b.z)

	u1.Mul(&a.x, &z2z2)
	u2.Mul(&b.x, &z1z1)

	s1.Mul(&a.y, &b.z)
	s1.Mul(&s1, &z2z2)
	s2.Mul(&b.y, &a.z)
	s2.Mul(&s2, &z1z1)

	h.Sub(&u2, &u1)
	r.Sub(&s2, &s1)

	if h.IsZero() {
		if r.IsZero() {
			return t.Double(a)
		}
		return t.SetInfinity()
	}
	r.Double(&r)

	var i, j, v gfP2
	i.Double(&h)
	i.Square(&i)
	j.Mul(&h, &i)

	v.Mul(&u1, &i)

	var x3, y3, z3, tmp gfP2
	x3.Square(&r)
	x3.Sub(&x3, &j)
	tmp.Double(&v)
	x3.Sub(&x3, &tmp)

	y3.Sub(&v, &x3)
	y3.Mul(&y3, &r)
	tmp.Mul(&s1, &j)
	tmp.Double(&tmp)
	y3.Sub(&y3, &tmp)

	z3.Add(&a.z, &b.z)
	z3.Square(&z3)
	z3.Sub(&z3, &z1z1)
	z3.Sub(&z3, &z2z2)
	z3.Mul(&z3, &h)

	t.x, t.y, t.z = x3, y3, z3
	return t
}

// Mul sets t = k*a by double-and-add.
func (t *twistPoint) Mul(a *twistPoint, k *big.Int) *twistPoint {
	if k.Sign() < 0 {
		na := newTwistPoint().Neg(a)
		return t.Mul(na, new(big.Int).Neg(k))
	}
	sum := newTwistPoint().SetInfinity()
	for i := k.BitLen() - 1; i >= 0; i-- {
		sum.Double(sum)
		if k.Bit(i) != 0 {
			sum.Add(sum, a)
		}
	}
	return t.Set(sum)
}
