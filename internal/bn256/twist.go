package bn256

import "math/big"

// twistPoint is a point on the sextic twist E': y^2 = x^3 + 3/xi over Fp2,
// in Jacobian coordinates. z = 0 (both components) encodes infinity.
type twistPoint struct {
	x, y, z *gfP2
}

func newTwistPoint() *twistPoint {
	return &twistPoint{x: newGFp2(), y: newGFp2(), z: newGFp2()}
}

func (t *twistPoint) Set(a *twistPoint) *twistPoint {
	t.x.Set(a.x)
	t.y.Set(a.y)
	t.z.Set(a.z)
	return t
}

func (t *twistPoint) SetInfinity() *twistPoint {
	t.x.SetOne()
	t.y.SetOne()
	t.z.SetZero()
	return t
}

func (t *twistPoint) IsInfinity() bool { return t.z.IsZero() }

func (t *twistPoint) SetAffine(x, y *gfP2) *twistPoint {
	t.x.Set(x)
	t.y.Set(y)
	t.z.SetOne()
	return t
}

// IsOnCurve reports whether t satisfies the twist equation.
func (t *twistPoint) IsOnCurve() bool {
	if t.IsInfinity() {
		return true
	}
	x, y := t.Affine()
	lhs := newGFp2().Square(y)
	rhs := newGFp2().Square(x)
	rhs.Mul(rhs, x)
	rhs.Add(rhs, twistB)
	return lhs.Equal(rhs)
}

// Affine returns the affine coordinates of t. It panics on infinity.
func (t *twistPoint) Affine() (x, y *gfP2) {
	if t.IsInfinity() {
		panic("bn256: affine coordinates of the twist point at infinity")
	}
	zInv := newGFp2().Invert(t.z)
	zInv2 := newGFp2().Square(zInv)
	x = newGFp2().Mul(t.x, zInv2)
	zInv2.Mul(zInv2, zInv)
	y = newGFp2().Mul(t.y, zInv2)
	return x, y
}

// MakeAffine normalizes t in place to z = 1 (or infinity).
func (t *twistPoint) MakeAffine() *twistPoint {
	if t.IsInfinity() || t.z.IsOne() {
		return t
	}
	x, y := t.Affine()
	t.x.Set(x)
	t.y.Set(y)
	t.z.SetOne()
	return t
}

func (t *twistPoint) Equal(a *twistPoint) bool {
	if t.IsInfinity() || a.IsInfinity() {
		return t.IsInfinity() == a.IsInfinity()
	}
	tx, ty := t.Affine()
	ax, ay := a.Affine()
	return tx.Equal(ax) && ty.Equal(ay)
}

func (t *twistPoint) Neg(a *twistPoint) *twistPoint {
	t.x.Set(a.x)
	t.y.Neg(a.y)
	t.z.Set(a.z)
	return t
}

// Double sets t = 2a (Jacobian, a = 0 curve).
func (t *twistPoint) Double(a *twistPoint) *twistPoint {
	if a.IsInfinity() {
		return t.SetInfinity()
	}
	A := newGFp2().Square(a.x)
	B := newGFp2().Square(a.y)
	C := newGFp2().Square(B)

	d := newGFp2().Add(a.x, B)
	d.Square(d)
	d.Sub(d, A)
	d.Sub(d, C)
	d.Double(d)

	e := newGFp2().Double(A)
	e.Add(e, A)

	f := newGFp2().Square(e)

	x3 := newGFp2().Double(d)
	x3.Sub(f, x3)

	c8 := newGFp2().Double(C)
	c8.Double(c8)
	c8.Double(c8)
	y3 := newGFp2().Sub(d, x3)
	y3.Mul(y3, e)
	y3.Sub(y3, c8)

	z3 := newGFp2().Mul(a.y, a.z)
	z3.Double(z3)

	t.x.Set(x3)
	t.y.Set(y3)
	t.z.Set(z3)
	return t
}

// Add sets t = a + b (general Jacobian addition).
func (t *twistPoint) Add(a, b *twistPoint) *twistPoint {
	if a.IsInfinity() {
		return t.Set(b)
	}
	if b.IsInfinity() {
		return t.Set(a)
	}

	z1z1 := newGFp2().Square(a.z)
	z2z2 := newGFp2().Square(b.z)

	u1 := newGFp2().Mul(a.x, z2z2)
	u2 := newGFp2().Mul(b.x, z1z1)

	s1 := newGFp2().Mul(a.y, b.z)
	s1.Mul(s1, z2z2)
	s2 := newGFp2().Mul(b.y, a.z)
	s2.Mul(s2, z1z1)

	h := newGFp2().Sub(u2, u1)
	r := newGFp2().Sub(s2, s1)

	if h.IsZero() {
		if r.IsZero() {
			return t.Double(a)
		}
		return t.SetInfinity()
	}
	r.Double(r)

	i := newGFp2().Double(h)
	i.Square(i)
	j := newGFp2().Mul(h, i)

	v := newGFp2().Mul(u1, i)

	x3 := newGFp2().Square(r)
	x3.Sub(x3, j)
	v2 := newGFp2().Double(v)
	x3.Sub(x3, v2)

	y3 := newGFp2().Sub(v, x3)
	y3.Mul(y3, r)
	sj := newGFp2().Mul(s1, j)
	sj.Double(sj)
	y3.Sub(y3, sj)

	z3 := newGFp2().Add(a.z, b.z)
	z3.Square(z3)
	z3.Sub(z3, z1z1)
	z3.Sub(z3, z2z2)
	z3.Mul(z3, h)

	t.x.Set(x3)
	t.y.Set(y3)
	t.z.Set(z3)
	return t
}

// Mul sets t = k*a by double-and-add.
func (t *twistPoint) Mul(a *twistPoint, k *big.Int) *twistPoint {
	if k.Sign() < 0 {
		na := newTwistPoint().Neg(a)
		return t.Mul(na, new(big.Int).Neg(k))
	}
	sum := newTwistPoint().SetInfinity()
	for i := k.BitLen() - 1; i >= 0; i-- {
		sum.Double(sum)
		if k.Bit(i) != 0 {
			sum.Add(sum, a)
		}
	}
	return t.Set(sum)
}
