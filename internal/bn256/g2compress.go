package bn256

// Compressed G2 encoding: the Fp2 x-coordinate (64 bytes) with flag bits
// packed into the spare top bits of the first coordinate, mirroring the G1
// format. The y root is selected by a parity bit: the parity of y.y, or of
// y.x when y.y = 0 (the two roots y and -y always differ in any non-zero
// component).

// MarshalCompressed encodes e in 64 bytes.
func (e *G2) MarshalCompressed() []byte {
	out := make([]byte, G2CompressedSize)
	if e.IsInfinity() {
		out[0] = flagInfinity
		return out
	}
	x, y := e.p.Affine()
	x.x.Marshal(out[:32])
	x.y.Marshal(out[32:])
	if twistYParity(y) {
		out[0] |= flagYOdd
	}
	return out
}

// UnmarshalCompressed decodes a 64-byte compressed encoding, validating
// curve and subgroup membership.
func (e *G2) UnmarshalCompressed(data []byte) error {
	if len(data) != G2CompressedSize {
		return ErrMalformedPoint
	}
	e.ensure()
	if data[0]&flagInfinity != 0 {
		// Canonical infinity is exactly the flag byte followed by zeros.
		if data[0] != flagInfinity || !allZero(data[1:]) {
			return ErrMalformedPoint
		}
		e.p.SetInfinity()
		return nil
	}
	wantOdd := data[0]&flagYOdd != 0
	raw := make([]byte, 32)
	copy(raw, data[:32])
	raw[0] &^= flagYOdd | flagInfinity

	x := newGFp2()
	if err := x.x.Unmarshal(raw); err != nil {
		return err
	}
	if err := x.y.Unmarshal(data[32:]); err != nil {
		return err
	}
	y2 := newGFp2().Square(x)
	y2.Mul(y2, x)
	y2.Add(y2, twistB)
	y := sqrtFp2(y2)
	if y == nil {
		return ErrMalformedPoint
	}
	if twistYParity(y) != wantOdd {
		y.Neg(y)
	}
	e.p.SetAffine(x, y)
	if !newTwistPoint().Mul(e.p, Order).IsInfinity() {
		return ErrMalformedPoint
	}
	return nil
}

// twistYParity returns the canonical sign bit of a twist y-coordinate.
func twistYParity(y *gfP2) bool {
	if !y.y.IsZero() {
		return y.y.IsOdd()
	}
	return y.x.IsOdd()
}
