package bn256

import (
	"crypto/rand"
	"testing"
)

func TestG2CompressedRoundTrip(t *testing.T) {
	for i := 0; i < 10; i++ {
		_, p, err := RandomG2(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		enc := p.MarshalCompressed()
		if len(enc) != G2CompressedSize {
			t.Fatalf("size %d", len(enc))
		}
		var q G2
		if err := q.UnmarshalCompressed(enc); err != nil {
			t.Fatal(err)
		}
		if !p.Equal(&q) {
			t.Fatal("G2 compressed round trip mismatch")
		}
	}
}

func TestG2CompressedInfinity(t *testing.T) {
	inf := new(G2).SetInfinity()
	var q G2
	if err := q.UnmarshalCompressed(inf.MarshalCompressed()); err != nil {
		t.Fatal(err)
	}
	if !q.IsInfinity() {
		t.Fatal("infinity round trip failed")
	}
}

func TestG2CompressedRejectsBadInput(t *testing.T) {
	var q G2
	if err := q.UnmarshalCompressed(make([]byte, 10)); err == nil {
		t.Fatal("accepted short encoding")
	}
	// An x with no corresponding point (or off-subgroup) must fail; find
	// one by perturbing a valid encoding until rejection, which must
	// happen quickly.
	_, p, _ := RandomG2(rand.Reader)
	enc := p.MarshalCompressed()
	rejected := false
	for i := 0; i < 64 && !rejected; i++ {
		enc[63] ^= byte(i + 1)
		if err := q.UnmarshalCompressed(enc); err != nil {
			rejected = true
		}
		enc[63] ^= byte(i + 1)
	}
	if !rejected {
		t.Fatal("no perturbed encoding was rejected: missing validation?")
	}
	// Out-of-range field element.
	bad := make([]byte, G2CompressedSize)
	P.FillBytes(bad[32:]) // x.y = p: non-canonical
	if err := q.UnmarshalCompressed(bad); err == nil {
		t.Fatal("accepted non-canonical field element")
	}
}

func TestG2CompressedBothRoots(t *testing.T) {
	// Compressing a point and its negation must produce encodings that
	// differ only in the sign bit and round-trip to the right points.
	_, p, _ := RandomG2(rand.Reader)
	np := new(G2).Neg(p)
	e1 := p.MarshalCompressed()
	e2 := np.MarshalCompressed()
	if (e1[0]^e2[0])&flagYOdd != flagYOdd {
		t.Fatal("sign bit does not distinguish negated points")
	}
	var q1, q2 G2
	if err := q1.UnmarshalCompressed(e1); err != nil {
		t.Fatal(err)
	}
	if err := q2.UnmarshalCompressed(e2); err != nil {
		t.Fatal(err)
	}
	if !q1.Equal(p) || !q2.Equal(np) {
		t.Fatal("sign disambiguation failed")
	}
}
