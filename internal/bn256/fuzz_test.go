package bn256

import (
	"bytes"
	"crypto/rand"
	"testing"
)

// Wire-decoder fuzzing: group-element parsers face attacker-controlled
// chain bytes, so they must never panic and must accept only canonical
// encodings (accept -> re-marshal byte-identical).

func FuzzG1UnmarshalCompressed(f *testing.F) {
	_, p, _ := RandomG1(rand.Reader)
	f.Add(p.MarshalCompressed())
	f.Add(new(G1).SetInfinity().MarshalCompressed())
	f.Fuzz(func(t *testing.T, data []byte) {
		var q G1
		if err := q.UnmarshalCompressed(data); err != nil {
			return
		}
		if !bytes.Equal(q.MarshalCompressed(), data) {
			t.Fatal("accepted non-canonical compressed G1")
		}
	})
}

func FuzzG1Unmarshal(f *testing.F) {
	_, p, _ := RandomG1(rand.Reader)
	f.Add(p.Marshal())
	f.Fuzz(func(t *testing.T, data []byte) {
		var q G1
		if err := q.Unmarshal(data); err != nil {
			return
		}
		if !bytes.Equal(q.Marshal(), data) {
			t.Fatal("accepted non-canonical G1")
		}
	})
}

func FuzzG2UnmarshalCompressed(f *testing.F) {
	_, p, _ := RandomG2(rand.Reader)
	f.Add(p.MarshalCompressed())
	f.Fuzz(func(t *testing.T, data []byte) {
		var q G2
		if err := q.UnmarshalCompressed(data); err != nil {
			return
		}
		if !bytes.Equal(q.MarshalCompressed(), data) {
			t.Fatal("accepted non-canonical compressed G2")
		}
	})
}

func FuzzGTUnmarshalCompressed(f *testing.F) {
	g := Pair(new(G1).ScalarBaseMult(bigOne), new(G2).ScalarBaseMult(bigOne))
	enc, err := g.MarshalCompressed()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(enc)
	f.Fuzz(func(t *testing.T, data []byte) {
		var q GT
		if err := q.UnmarshalCompressed(data); err != nil {
			return
		}
		re, err := q.MarshalCompressed()
		if err != nil {
			t.Fatalf("accepted GT fails to re-marshal: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatal("accepted non-canonical compressed GT")
		}
	})
}
