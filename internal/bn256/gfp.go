package bn256

import (
	"math/big"
	"math/bits"
)

// gfP is an element of the base field Fp as four 64-bit limbs in Montgomery
// form: a gfP holding limbs x represents the field element x * R^-1 mod p,
// R = 2^256. Values are always fully reduced into [0, p). The fixed-size
// representation keeps every field operation allocation-free and turns the
// full modular reduction after each big.Int op into a handful of
// math/bits.Mul64/Add64 instructions.
//
// The Montgomery constants are not transcribed: initGFp derives them from
// the package prime P (itself derived from the BN parameter u) and validates
// them, matching the package's derive-and-check philosophy. Conversion in
// and out of Montgomery form happens only at the marshal boundary and when
// interoperating with math/big (Invert, exponent handling), so wire formats
// are byte-identical to the big.Int implementation.
type gfP [4]uint64

var (
	// pLimbs is the prime p as little-endian limbs.
	pLimbs [4]uint64

	// np is -p^-1 mod 2^64, the Montgomery reduction factor.
	np uint64

	// r2 is R^2 mod p as raw limbs; multiplying by it converts a canonical
	// value into Montgomery form.
	r2 gfP

	// rOne is R mod p: the Montgomery form of 1.
	rOne gfP

	// gfpCurveB is the curve constant 3 in Montgomery form.
	gfpCurveB gfP
)

// initGFp derives the Montgomery constants from P. It must run after P is
// derived and before any gfP arithmetic (constants.go calls it from init).
func initGFp() {
	pLimbs = limbsFromBig(P)

	// np = -p^-1 mod 2^64 by Newton iteration: each step doubles the number
	// of correct low bits, 6 steps suffice for 64.
	inv := pLimbs[0] // correct to 1 bit (p is odd)
	for i := 0; i < 6; i++ {
		inv *= 2 - pLimbs[0]*inv
	}
	np = -inv
	if pLimbs[0]*(-np) != 1 {
		panic("bn256: montgomery inverse derivation failed")
	}

	one := new(big.Int).Lsh(bigOne, 256)
	rOne = limbsFromBig(new(big.Int).Mod(one, P))
	r2big := new(big.Int).Lsh(bigOne, 512)
	r2 = limbsFromBig(r2big.Mod(r2big, P))

	gfpCurveB.SetBig(curveB)

	// Sanity: 1 encodes/decodes through Montgomery form.
	var chk gfP
	chk.SetBig(bigOne)
	if chk != rOne || chk.Big().Cmp(bigOne) != 0 {
		panic("bn256: montgomery constant derivation failed")
	}
}

// limbsFromBig converts a canonical value in [0, 2^256) to limbs.
func limbsFromBig(v *big.Int) [4]uint64 {
	var buf [32]byte
	v.FillBytes(buf[:])
	return limbsFromBytes(buf[:])
}

// limbsFromBytes parses a 32-byte big-endian encoding into limbs.
func limbsFromBytes(data []byte) [4]uint64 {
	var out [4]uint64
	for i := 0; i < 4; i++ {
		for j := 0; j < 8; j++ {
			out[3-i] = out[3-i]<<8 | uint64(data[i*8+j])
		}
	}
	return out
}

// gfpCarrySub reduces c into [0, p): subtracts p when c >= p (or when the
// addition that produced c overflowed 2^256, signaled by carry).
func gfpCarrySub(c *gfP, carry uint64) {
	var d gfP
	var borrow uint64
	d[0], borrow = bits.Sub64(c[0], pLimbs[0], 0)
	d[1], borrow = bits.Sub64(c[1], pLimbs[1], borrow)
	d[2], borrow = bits.Sub64(c[2], pLimbs[2], borrow)
	d[3], borrow = bits.Sub64(c[3], pLimbs[3], borrow)
	if carry != 0 || borrow == 0 {
		*c = d
	}
}

func gfpAdd(c, a, b *gfP) {
	var carry uint64
	c[0], carry = bits.Add64(a[0], b[0], 0)
	c[1], carry = bits.Add64(a[1], b[1], carry)
	c[2], carry = bits.Add64(a[2], b[2], carry)
	c[3], carry = bits.Add64(a[3], b[3], carry)
	gfpCarrySub(c, carry)
}

func gfpSub(c, a, b *gfP) {
	var borrow uint64
	c[0], borrow = bits.Sub64(a[0], b[0], 0)
	c[1], borrow = bits.Sub64(a[1], b[1], borrow)
	c[2], borrow = bits.Sub64(a[2], b[2], borrow)
	c[3], borrow = bits.Sub64(a[3], b[3], borrow)
	if borrow != 0 {
		var carry uint64
		c[0], carry = bits.Add64(c[0], pLimbs[0], 0)
		c[1], carry = bits.Add64(c[1], pLimbs[1], carry)
		c[2], carry = bits.Add64(c[2], pLimbs[2], carry)
		c[3], _ = bits.Add64(c[3], pLimbs[3], carry)
	}
}

func gfpNeg(c, a *gfP) {
	if a.IsZero() {
		*c = gfP{}
		return
	}
	var borrow uint64
	c[0], borrow = bits.Sub64(pLimbs[0], a[0], 0)
	c[1], borrow = bits.Sub64(pLimbs[1], a[1], borrow)
	c[2], borrow = bits.Sub64(pLimbs[2], a[2], borrow)
	c[3], _ = bits.Sub64(pLimbs[3], a[3], borrow)
}

func gfpDouble(c, a *gfP) { gfpAdd(c, a, a) }

// gfpMul sets c = a * b * R^-1 mod p using interleaved (CIOS) Montgomery
// multiplication. p < 2^254 = R/4, so the running value stays below 2p and a
// single conditional subtraction at the end fully reduces.
func gfpMul(c, a, b *gfP) {
	var t [4]uint64
	var t4, t5 uint64
	for i := 0; i < 4; i++ {
		// t += a * b[i]
		var carry uint64
		for j := 0; j < 4; j++ {
			hi, lo := bits.Mul64(a[j], b[i])
			var cc uint64
			lo, cc = bits.Add64(lo, t[j], 0)
			hi += cc
			lo, cc = bits.Add64(lo, carry, 0)
			hi += cc
			t[j] = lo
			carry = hi
		}
		t4, t5 = bits.Add64(t4, carry, 0)

		// t = (t + m*p) / 2^64 with m chosen so the low word cancels.
		m := t[0] * np
		hi, lo := bits.Mul64(m, pLimbs[0])
		_, cc := bits.Add64(lo, t[0], 0)
		carry = hi + cc
		for j := 1; j < 4; j++ {
			hi, lo := bits.Mul64(m, pLimbs[j])
			var c2 uint64
			lo, c2 = bits.Add64(lo, t[j], 0)
			hi += c2
			lo, c2 = bits.Add64(lo, carry, 0)
			hi += c2
			t[j-1] = lo
			carry = hi
		}
		t[3], cc = bits.Add64(t4, carry, 0)
		t4 = t5 + cc
		t5 = 0
	}
	*c = gfP{t[0], t[1], t[2], t[3]}
	gfpCarrySub(c, t4)
}

func gfpSquare(c, a *gfP) { gfpMul(c, a, a) }

// --- methods ---

func (e *gfP) Set(a *gfP) *gfP {
	*e = *a
	return e
}

func (e *gfP) SetZero() *gfP {
	*e = gfP{}
	return e
}

func (e *gfP) SetOne() *gfP {
	*e = rOne
	return e
}

func (e *gfP) IsZero() bool { return *e == gfP{} }

func (e *gfP) IsOne() bool { return *e == rOne }

func (e *gfP) Equal(a *gfP) bool { return *e == *a }

// SetBig sets e to v mod p (Montgomery encoding).
func (e *gfP) SetBig(v *big.Int) *gfP {
	m := new(big.Int).Mod(v, P)
	raw := gfP(limbsFromBig(m))
	gfpMul(e, &raw, &r2)
	return e
}

// SetInt64 sets e to the small integer v.
func (e *gfP) SetInt64(v int64) *gfP { return e.SetBig(big.NewInt(v)) }

// canonical returns the canonical (non-Montgomery) limbs of e.
func (e *gfP) canonical() [4]uint64 {
	var raw, one gfP
	one[0] = 1
	gfpMul(&raw, e, &one)
	return [4]uint64(raw)
}

// Big returns the canonical value of e as a fresh big.Int (Montgomery
// decoding).
func (e *gfP) Big() *big.Int {
	var buf [32]byte
	e.Marshal(buf[:])
	return new(big.Int).SetBytes(buf[:])
}

// IsOdd reports the parity of the canonical value of e (the Bit(0) used by
// the compressed encodings' sign flags).
func (e *gfP) IsOdd() bool { return e.canonical()[0]&1 == 1 }

// Marshal writes the canonical 32-byte big-endian encoding into out.
func (e *gfP) Marshal(out []byte) {
	raw := e.canonical()
	for i := 0; i < 4; i++ {
		v := raw[3-i]
		for j := 7; j >= 0; j-- {
			out[i*8+j] = byte(v)
			v >>= 8
		}
	}
}

// Unmarshal decodes a canonical 32-byte big-endian value, rejecting
// encodings >= p.
func (e *gfP) Unmarshal(data []byte) error {
	raw := gfP(limbsFromBytes(data))
	// raw must be < p.
	var borrow uint64
	for i := 0; i < 4; i++ {
		_, borrow = bits.Sub64(raw[i], pLimbs[i], borrow)
	}
	if borrow == 0 { // raw >= p
		return ErrMalformedPoint
	}
	gfpMul(e, &raw, &r2)
	return nil
}

func (e *gfP) Add(a, b *gfP) *gfP {
	gfpAdd(e, a, b)
	return e
}

func (e *gfP) Sub(a, b *gfP) *gfP {
	gfpSub(e, a, b)
	return e
}

func (e *gfP) Neg(a *gfP) *gfP {
	gfpNeg(e, a)
	return e
}

func (e *gfP) Double(a *gfP) *gfP {
	gfpDouble(e, a)
	return e
}

func (e *gfP) Mul(a, b *gfP) *gfP {
	gfpMul(e, a, b)
	return e
}

func (e *gfP) Square(a *gfP) *gfP {
	gfpSquare(e, a)
	return e
}

// Invert sets e = 1/a mod p. It panics on zero (division by zero in a
// cryptographic computation is a programming error). The extended-Euclid
// path through math/big is faster than a Fermat exponentiation chain and
// runs only in inversion-bound spots (affine conversions, Miller-loop line
// slopes), never per-multiplication.
func (e *gfP) Invert(a *gfP) *gfP {
	inv := new(big.Int).ModInverse(a.Big(), P)
	if inv == nil {
		panic("bn256: inverse of zero in Fp")
	}
	return e.SetBig(inv)
}

// Exp sets e = a^k by square-and-multiply (k is a non-negative canonical
// exponent, not a field element).
func (e *gfP) Exp(a *gfP, k *big.Int) *gfP {
	sum := rOne
	var t gfP
	for i := k.BitLen() - 1; i >= 0; i-- {
		gfpSquare(&t, &sum)
		if k.Bit(i) != 0 {
			gfpMul(&sum, &t, a)
		} else {
			sum = t
		}
	}
	*e = sum
	return e
}

// Sqrt sets e to a square root of a and returns e, or returns nil if a is a
// quadratic non-residue. p = 3 mod 4, so a^((p+1)/4) is a root whenever one
// exists.
func (e *gfP) Sqrt(a *gfP) *gfP {
	var r, chk gfP
	r.Exp(a, pPlus1Over4)
	gfpSquare(&chk, &r)
	if chk != *a {
		return nil
	}
	*e = r
	return e
}

func (e *gfP) String() string { return e.Big().String() }
