package bn256

import (
	"bytes"
	"crypto/rand"
	"math/big"
	"runtime"
	"testing"
)

// randomPairs draws n random (G1, G2) pairs plus matching scalars.
func randomPairs(t testing.TB, n int) ([]*G1, []*G2, []*big.Int) {
	t.Helper()
	g1s := make([]*G1, n)
	g2s := make([]*G2, n)
	scalars := make([]*big.Int, n)
	for i := 0; i < n; i++ {
		k1, err := rand.Int(rand.Reader, Order)
		if err != nil {
			t.Fatal(err)
		}
		k2, err := rand.Int(rand.Reader, Order)
		if err != nil {
			t.Fatal(err)
		}
		g1s[i] = new(G1).ScalarBaseMult(k1)
		g2s[i] = new(G2).ScalarBaseMult(k2)
		scalars[i] = k1
	}
	return g1s, g2s, scalars
}

// TestMultiScalarMultParallelMatchesSerial pins the parallel Pippenger to
// the serial result at several worker counts, including worker counts above
// GOMAXPROCS and above the window count.
func TestMultiScalarMultParallelMatchesSerial(t *testing.T) {
	for _, n := range []int{1, 2, 17, 120} {
		points, _, scalars := randomPairs(t, n)
		want := new(G1).MultiScalarMult(points, scalars).Marshal()
		for _, workers := range []int{1, 2, 4, 64, 0} {
			got := new(G1).MultiScalarMultParallel(points, scalars, workers).Marshal()
			if !bytes.Equal(got, want) {
				t.Fatalf("n=%d workers=%d: parallel MSM diverges from serial", n, workers)
			}
		}
	}
}

// TestMultiScalarMultParallelEdgeCases covers the empty and all-zero-scalar
// inputs on the parallel path.
func TestMultiScalarMultParallelEdgeCases(t *testing.T) {
	if got := new(G1).MultiScalarMultParallel(nil, nil, 4); !got.IsInfinity() {
		t.Fatal("empty MSM is not infinity")
	}
	points, _, _ := randomPairs(t, 3)
	zeros := []*big.Int{big.NewInt(0), big.NewInt(0), big.NewInt(0)}
	if got := new(G1).MultiScalarMultParallel(points, zeros, 4); !got.IsInfinity() {
		t.Fatal("all-zero MSM is not infinity")
	}
}

// TestMillerBatchMatchesLoop checks that MillerBatch at any worker count is
// byte-identical to the serial product of MillerLoop calls, both unreduced
// and after the shared final exponentiation.
func TestMillerBatchMatchesLoop(t *testing.T) {
	for _, n := range []int{1, 2, 7, 33} {
		g1s, g2s, _ := randomPairs(t, n)
		want := new(GT).SetOne()
		for i := range g1s {
			want.Add(want, MillerLoop(g1s[i], g2s[i]))
		}
		wantBytes := want.Marshal()
		wantReduced := FinalExponentiate(want).Marshal()
		for _, workers := range []int{1, 2, 4, 64, 0} {
			got := MillerBatch(g1s, g2s, workers)
			if !bytes.Equal(got.Marshal(), wantBytes) {
				t.Fatalf("n=%d workers=%d: MillerBatch diverges from MillerLoop product", n, workers)
			}
			if !bytes.Equal(FinalExponentiate(got).Marshal(), wantReduced) {
				t.Fatalf("n=%d workers=%d: reduced MillerBatch diverges", n, workers)
			}
		}
	}
}

// TestMillerBatchSharedPoints exercises the same G2 generator appearing in
// every pair — the exact shape verifyTerms produces — to catch races or
// aliasing on shared inputs.
func TestMillerBatchSharedPoints(t *testing.T) {
	const n = 16
	g1s, _, _ := randomPairs(t, n)
	g2 := GenG2()
	g2s := make([]*G2, n)
	for i := range g2s {
		g2s[i] = g2
	}
	want := MillerBatch(g1s, g2s, 1).Marshal()
	got := MillerBatch(g1s, g2s, runtime.GOMAXPROCS(0)+2).Marshal()
	if !bytes.Equal(got, want) {
		t.Fatal("MillerBatch with shared G2 diverges across worker counts")
	}
}

func TestMillerBatchEmpty(t *testing.T) {
	if got := MillerBatch(nil, nil, 4); !got.IsOne() {
		t.Fatal("empty MillerBatch is not one")
	}
}

func BenchmarkMultiScalarMult300Parallel(b *testing.B) {
	points, _, scalars := randomPairs(b, 300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		new(G1).MultiScalarMultParallel(points, scalars, 0)
	}
}

func BenchmarkMillerBatch16(b *testing.B) {
	g1s, g2s, _ := randomPairs(b, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MillerBatch(g1s, g2s, 0)
	}
}
