package bn256

import (
	"crypto/rand"
	"math/big"
	"testing"
)

func TestGeneratorsValid(t *testing.T) {
	if !g1Gen.IsOnCurve() {
		t.Fatal("g1 generator off curve")
	}
	if !g2Gen.IsOnCurve() {
		t.Fatal("g2 generator off twist")
	}
	if !newTwistPoint().Mul(g2Gen, Order).IsInfinity() {
		t.Fatal("g2 generator has wrong order")
	}
}

func TestPairNonDegenerate(t *testing.T) {
	g1 := new(G1).ScalarBaseMult(big.NewInt(1))
	g2 := new(G2).ScalarBaseMult(big.NewInt(1))
	e := Pair(g1, g2)
	if e.IsOne() {
		t.Fatal("e(g1, g2) = 1: pairing is degenerate")
	}
	// e(g1, g2)^n must be 1.
	if !new(GT).ScalarMult(e, Order).IsOne() {
		t.Fatal("e(g1, g2)^n != 1")
	}
}

func TestPairBilinear(t *testing.T) {
	for i := 0; i < 3; i++ {
		a, err := rand.Int(rand.Reader, Order)
		if err != nil {
			t.Fatal(err)
		}
		b, err := rand.Int(rand.Reader, Order)
		if err != nil {
			t.Fatal(err)
		}

		p := new(G1).ScalarBaseMult(a)
		q := new(G2).ScalarBaseMult(b)
		e1 := Pair(p, q)

		g1 := new(G1).ScalarBaseMult(big.NewInt(1))
		g2 := new(G2).ScalarBaseMult(big.NewInt(1))
		ab := new(big.Int).Mul(a, b)
		ab.Mod(ab, Order)
		e2 := new(GT).ScalarMult(Pair(g1, g2), ab)

		if !e1.Equal(e2) {
			t.Fatalf("bilinearity failed: e(aG, bH) != e(G, H)^(ab) (a=%v b=%v)", a, b)
		}
	}
}

func TestPairAdditivity(t *testing.T) {
	a, _ := rand.Int(rand.Reader, Order)
	b, _ := rand.Int(rand.Reader, Order)
	pa := new(G1).ScalarBaseMult(a)
	pb := new(G1).ScalarBaseMult(b)
	q := new(G2).ScalarBaseMult(big.NewInt(7))

	sum := new(G1).Add(pa, pb)
	e1 := Pair(sum, q)
	e2 := new(GT).Add(Pair(pa, q), Pair(pb, q))
	if !e1.Equal(e2) {
		t.Fatal("e(A+B, Q) != e(A,Q)*e(B,Q)")
	}
}

func TestPairingCheck(t *testing.T) {
	a, _ := rand.Int(rand.Reader, Order)
	p := new(G1).ScalarBaseMult(a)
	q := new(G2).ScalarBaseMult(big.NewInt(1))
	np := new(G1).Neg(p)
	// e(P, Q) * e(-P, Q) == 1
	if !PairingCheck([]*G1{p, np}, []*G2{q, q}) {
		t.Fatal("pairing check of e(P,Q)e(-P,Q) failed")
	}
	if PairingCheck([]*G1{p, p}, []*G2{q, q}) {
		t.Fatal("pairing check accepted a non-identity product")
	}
}

func BenchmarkMillerLoop(b *testing.B) {
	_, p, _ := RandomG1(rand.Reader)
	_, q, _ := RandomG2(rand.Reader)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MillerLoop(p, q)
	}
}

func BenchmarkFinalExponentiate(b *testing.B) {
	_, p, _ := RandomG1(rand.Reader)
	_, q, _ := RandomG2(rand.Reader)
	m := MillerLoop(p, q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FinalExponentiate(m)
	}
}

func TestPairInfinity(t *testing.T) {
	inf1 := new(G1).SetInfinity()
	g2 := new(G2).ScalarBaseMult(big.NewInt(5))
	if !Pair(inf1, g2).IsOne() {
		t.Fatal("e(O, Q) != 1")
	}
	g1 := new(G1).ScalarBaseMult(big.NewInt(5))
	inf2 := new(G2).SetInfinity()
	if !Pair(g1, inf2).IsOne() {
		t.Fatal("e(P, O) != 1")
	}
}
