package bn256

import (
	"crypto/rand"
	"math/big"
	"testing"
)

// TestFastFinalExpMatchesNaive pins the optimized u-chain hard part to the
// provably-correct naive exponentiation by (p^4-p^2+1)/n. The production
// pairing path is only allowed to use the fast version because this holds.
func TestFastFinalExpMatchesNaive(t *testing.T) {
	for i := 0; i < 5; i++ {
		a, _ := rand.Int(rand.Reader, Order)
		b, _ := rand.Int(rand.Reader, Order)
		p := newCurvePoint().Mul(g1Gen, a)
		q := newTwistPoint().Mul(g2Gen, b)
		m := miller(q, p)
		naive := finalExponentiation(m)
		fast := finalExponentiationFast(m)
		if !naive.Equal(fast) {
			t.Fatalf("iteration %d: fast final exponentiation disagrees with naive reference", i)
		}
	}
}

// TestFixedBaseMatchesGeneric pins the windowed fixed-base path to the
// generic double-and-add ladder.
func TestFixedBaseMatchesGeneric(t *testing.T) {
	cases := []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		big.NewInt(2),
		new(big.Int).Sub(Order, big.NewInt(1)),
		new(big.Int).Set(Order), // reduces to zero
	}
	for i := 0; i < 10; i++ {
		k, _ := rand.Int(rand.Reader, Order)
		cases = append(cases, k)
	}
	for _, k := range cases {
		fast := mulBaseFixed(k)
		slow := newCurvePoint().Mul(g1Gen, k)
		if !fast.Equal(slow) {
			t.Fatalf("fixed-base mult disagrees with ladder for k=%v", k)
		}
	}
}

func BenchmarkAblationFinalExpNaive(b *testing.B) {
	m := miller(g2Gen, g1Gen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		finalExponentiation(m)
	}
}

func BenchmarkAblationFinalExpFast(b *testing.B) {
	m := miller(g2Gen, g1Gen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		finalExponentiationFast(m)
	}
}

func BenchmarkAblationBaseMultLadder(b *testing.B) {
	k, _ := rand.Int(rand.Reader, Order)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		newCurvePoint().Mul(g1Gen, k)
	}
}

func BenchmarkAblationBaseMultFixed(b *testing.B) {
	k, _ := rand.Int(rand.Reader, Order)
	mulBaseFixed(k) // warm the table outside the timed region
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mulBaseFixed(k)
	}
}
