package bn256

import (
	"context"
	"errors"
	"math/big"
	"math/bits"

	"repro/internal/parallel"
)

// msmCheckInterval is how many points a bucket pass accumulates between
// context polls in MultiScalarMultCtx: frequent enough that a canceled
// prover stops within microseconds, rare enough to stay off the profile.
const msmCheckInterval = 64

// MultiScalarMult sets e = sum_i scalars[i] * points[i] using Pippenger's
// bucket method and returns e. It is the workhorse of both the prover
// (sigma and psi aggregation) and the verifier (chi aggregation); for
// k = 300 it is roughly 6x faster than k independent scalar
// multiplications. len(points) must equal len(scalars).
func (e *G1) MultiScalarMult(points []*G1, scalars []*big.Int) *G1 {
	return e.multiScalarMult(points, scalars, 1)
}

// MultiScalarMultParallel is MultiScalarMult with the per-window bucket
// accumulation fanned out across at most workers goroutines (workers <= 0
// selects GOMAXPROCS). Each of the ~maxBits/c windows is an independent
// bucket pass over all the points; the window sums are combined serially in
// window order, so the result is identical to the serial method for any
// worker count.
func (e *G1) MultiScalarMultParallel(points []*G1, scalars []*big.Int, workers int) *G1 {
	return e.multiScalarMult(points, scalars, workers)
}

// MultiScalarMultCtx is MultiScalarMultParallel with cooperative
// cancellation: the window dispatch and each window's bucket pass poll ctx
// (every msmCheckInterval points), so a prover whose peer vanished abandons
// the multi-scalar multiplication mid-computation instead of finishing a
// result nobody will read. On cancellation it returns ctx.Err() and leaves
// e unspecified; a nil error means e holds the exact same value the serial
// method computes.
func (e *G1) MultiScalarMultCtx(ctx context.Context, points []*G1, scalars []*big.Int, workers int) (*G1, error) {
	if ctx == nil || ctx.Done() == nil {
		return e.multiScalarMult(points, scalars, workers), nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res := e.multiScalarMultCancelable(ctx, points, scalars, workers)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if res == nil {
		// Canceled between the last poll and the windows' completion.
		return nil, errMSMCanceled
	}
	return res, nil
}

var errMSMCanceled = errors.New("bn256: multi-scalar multiplication canceled")

func (e *G1) multiScalarMult(points []*G1, scalars []*big.Int, workers int) *G1 {
	return e.multiScalarMultCancelable(nil, points, scalars, workers)
}

// multiScalarMultCancelable runs Pippenger's method, polling ctx (when
// non-nil) inside the per-window point loops. It returns nil if a window
// was abandoned; the caller maps that to ctx.Err().
func (e *G1) multiScalarMultCancelable(ctx context.Context, points []*G1, scalars []*big.Int, workers int) *G1 {
	if len(points) != len(scalars) {
		panic("bn256: MultiScalarMult length mismatch")
	}
	e.ensure()
	if len(points) == 0 {
		e.p.SetInfinity()
		return e
	}

	// Reduce scalars into [0, n) once up front.
	reduced := make([]*big.Int, len(scalars))
	maxBits := 0
	for i, s := range scalars {
		reduced[i] = new(big.Int).Mod(s, Order)
		if b := reduced[i].BitLen(); b > maxBits {
			maxBits = b
		}
	}
	if maxBits == 0 {
		e.p.SetInfinity()
		return e
	}

	c := msmWindowBits(len(points), maxBits)
	windows := (maxBits + c - 1) / c
	numBuckets := 1 << c

	// Word views of the scalars, so digit extraction shifts whole words
	// instead of assembling digits one Bit() call at a time.
	words := make([][]big.Word, len(reduced))
	for i, s := range reduced {
		words[i] = s.Bits()
	}

	// Each window's bucket accumulation touches every point but no other
	// window's state, so the windows fan out across the workers; the
	// carry-dependent combine below stays serial.
	windowSums := make([]*curvePoint, windows)
	windowPass := func(w int) {
		buckets := make([]*curvePoint, numBuckets)
		for i := range words {
			if ctx != nil && i%msmCheckInterval == 0 && ctx.Err() != nil {
				return // abandon the window: windowSums[w] stays nil
			}
			idx := scalarDigit(words[i], w*c, c)
			if idx == 0 {
				continue
			}
			if buckets[idx] == nil {
				buckets[idx] = newCurvePoint().Set(points[i].p)
			} else {
				buckets[idx].Add(buckets[idx], points[i].p)
			}
		}
		// Running-sum trick: sum_{b} b * bucket[b].
		running := newCurvePoint().SetInfinity()
		windowSum := newCurvePoint().SetInfinity()
		for b := numBuckets - 1; b >= 1; b-- {
			if buckets[b] != nil {
				running.Add(running, buckets[b])
			}
			windowSum.Add(windowSum, running)
		}
		windowSums[w] = windowSum
	}
	if ctx != nil {
		if parallel.ForCtx(ctx, workers, windows, windowPass) != nil {
			return nil
		}
		for _, ws := range windowSums {
			if ws == nil {
				return nil
			}
		}
	} else {
		parallel.For(workers, windows, windowPass)
	}

	acc := newCurvePoint().SetInfinity()
	for w := windows - 1; w >= 0; w-- {
		for i := 0; i < c; i++ {
			acc.Double(acc)
		}
		acc.Add(acc, windowSums[w])
	}
	e.p.Set(acc)
	return e
}

// msmWindowBits picks the Pippenger bucket width for k points of maxBits-bit
// scalars by minimizing the modeled cost
//
//	windows(c) * (k bucket adds + 2*2^c running-sum adds + c doublings),
//
// which tracks the ln-optimal window: small batches (the k=16 bisection
// leaves of VerifyBatch) get a narrow window instead of paying the k=300
// bucket cost, and very large batches widen beyond the old fixed 8.
func msmWindowBits(k, maxBits int) int {
	best, bestCost := 1, int64(1)<<62
	for c := 1; c <= 16; c++ {
		windows := int64((maxBits + c - 1) / c)
		cost := windows * (int64(k) + int64(2)<<c + int64(c))
		if cost < bestCost {
			best, bestCost = c, cost
		}
	}
	return best
}

const wordBits = bits.UintSize

// scalarDigit extracts the width-bit digit of the nat words starting at bit
// position bit. width must be at most wordBits, so a digit spans at most two
// words.
func scalarDigit(words []big.Word, bit, width int) int {
	idx := bit / wordBits
	if idx >= len(words) {
		return 0
	}
	shift := bit % wordBits
	d := uint(words[idx]) >> shift
	if rem := wordBits - shift; rem < width && idx+1 < len(words) {
		d |= uint(words[idx+1]) << rem
	}
	return int(d & (1<<width - 1))
}
