package bn256

import "math/big"

// msmWindowBits is the Pippenger bucket width. 8 bits is near optimal for
// the multi-exponentiation sizes the auditing protocol uses (k = 100..500).
const msmWindowBits = 8

// MultiScalarMult sets e = sum_i scalars[i] * points[i] using Pippenger's
// bucket method and returns e. It is the workhorse of both the prover
// (sigma and psi aggregation) and the verifier (chi aggregation); for
// k = 300 it is roughly 6x faster than k independent scalar
// multiplications. len(points) must equal len(scalars).
func (e *G1) MultiScalarMult(points []*G1, scalars []*big.Int) *G1 {
	if len(points) != len(scalars) {
		panic("bn256: MultiScalarMult length mismatch")
	}
	e.ensure()
	if len(points) == 0 {
		e.p.SetInfinity()
		return e
	}

	// Reduce scalars into [0, n) once up front.
	reduced := make([]*big.Int, len(scalars))
	maxBits := 0
	for i, s := range scalars {
		reduced[i] = new(big.Int).Mod(s, Order)
		if b := reduced[i].BitLen(); b > maxBits {
			maxBits = b
		}
	}
	if maxBits == 0 {
		e.p.SetInfinity()
		return e
	}

	windows := (maxBits + msmWindowBits - 1) / msmWindowBits
	numBuckets := 1 << msmWindowBits

	acc := newCurvePoint().SetInfinity()
	buckets := make([]*curvePoint, numBuckets)
	for w := windows - 1; w >= 0; w-- {
		for i := 0; i < msmWindowBits; i++ {
			acc.Double(acc)
		}
		for i := range buckets {
			buckets[i] = nil
		}
		for i, s := range reduced {
			idx := scalarWindow(s, w)
			if idx == 0 {
				continue
			}
			if buckets[idx] == nil {
				buckets[idx] = newCurvePoint().Set(points[i].p)
			} else {
				buckets[idx].Add(buckets[idx], points[i].p)
			}
		}
		// Running-sum trick: sum_{b} b * bucket[b].
		running := newCurvePoint().SetInfinity()
		windowSum := newCurvePoint().SetInfinity()
		for b := numBuckets - 1; b >= 1; b-- {
			if buckets[b] != nil {
				running.Add(running, buckets[b])
			}
			windowSum.Add(windowSum, running)
		}
		acc.Add(acc, windowSum)
	}
	e.p.Set(acc)
	return e
}

// scalarWindow extracts the w-th msmWindowBits-wide digit of s.
func scalarWindow(s *big.Int, w int) int {
	out := 0
	base := w * msmWindowBits
	for i := 0; i < msmWindowBits; i++ {
		out |= int(s.Bit(base+i)) << i
	}
	return out
}
