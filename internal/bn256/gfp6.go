package bn256

import "math/big"

// gfP6 implements the degree-three extension Fp6 = Fp2[tau]/(tau^3 - xi).
// An element is x*tau^2 + y*tau + z.
type gfP6 struct {
	x, y, z *gfP2
}

func newGFp6() *gfP6 {
	return &gfP6{x: newGFp2(), y: newGFp2(), z: newGFp2()}
}

func (e *gfP6) String() string {
	return "(" + e.x.String() + "tau^2 + " + e.y.String() + "tau + " + e.z.String() + ")"
}

func (e *gfP6) Set(a *gfP6) *gfP6 {
	e.x.Set(a.x)
	e.y.Set(a.y)
	e.z.Set(a.z)
	return e
}

func (e *gfP6) SetZero() *gfP6 {
	e.x.SetZero()
	e.y.SetZero()
	e.z.SetZero()
	return e
}

func (e *gfP6) SetOne() *gfP6 {
	e.x.SetZero()
	e.y.SetZero()
	e.z.SetOne()
	return e
}

func (e *gfP6) IsZero() bool { return e.x.IsZero() && e.y.IsZero() && e.z.IsZero() }

func (e *gfP6) IsOne() bool { return e.x.IsZero() && e.y.IsZero() && e.z.IsOne() }

func (e *gfP6) Equal(a *gfP6) bool {
	return e.x.Equal(a.x) && e.y.Equal(a.y) && e.z.Equal(a.z)
}

func (e *gfP6) Neg(a *gfP6) *gfP6 {
	e.x.Neg(a.x)
	e.y.Neg(a.y)
	e.z.Neg(a.z)
	return e
}

// Frobenius sets e = a^p.
// tau^p = tau * xi^((p-1)/3) and tau^(2p) = tau^2 * xi^(2(p-1)/3), while the
// Fp2 coefficients are conjugated.
func (e *gfP6) Frobenius(a *gfP6) *gfP6 {
	e.x.Conjugate(a.x)
	e.y.Conjugate(a.y)
	e.z.Conjugate(a.z)
	e.x.Mul(e.x, xiTo2PMinus2Over3)
	e.y.Mul(e.y, xiToPMinus1Over3)
	return e
}

// FrobeniusP2 sets e = a^(p^2). The coefficients of the p^2-power Frobenius
// lie in Fp, so no conjugation is involved.
func (e *gfP6) FrobeniusP2(a *gfP6) *gfP6 {
	e.x.MulScalar(a.x, xiTo2PSquaredMinus2Over3)
	e.y.MulScalar(a.y, xiToPSquaredMinus1Over3)
	e.z.Set(a.z)
	return e
}

func (e *gfP6) Add(a, b *gfP6) *gfP6 {
	e.x.Add(a.x, b.x)
	e.y.Add(a.y, b.y)
	e.z.Add(a.z, b.z)
	return e
}

func (e *gfP6) Sub(a, b *gfP6) *gfP6 {
	e.x.Sub(a.x, b.x)
	e.y.Sub(a.y, b.y)
	e.z.Sub(a.z, b.z)
	return e
}

// Mul sets e = a*b via schoolbook multiplication with tau^3 = xi reduction:
//
//	z' = az*bz + xi(ax*by + ay*bx)
//	y' = ay*bz + az*by + xi(ax*bx)
//	x' = ax*bz + ay*by + az*bx
func (e *gfP6) Mul(a, b *gfP6) *gfP6 {
	t := newGFp2()

	tz := newGFp2().Mul(a.x, b.y)
	t.Mul(a.y, b.x)
	tz.Add(tz, t)
	tz.MulXi(tz)
	t.Mul(a.z, b.z)
	tz.Add(tz, t)

	ty := newGFp2().Mul(a.x, b.x)
	ty.MulXi(ty)
	t.Mul(a.y, b.z)
	ty.Add(ty, t)
	t.Mul(a.z, b.y)
	ty.Add(ty, t)

	tx := newGFp2().Mul(a.x, b.z)
	t.Mul(a.y, b.y)
	tx.Add(tx, t)
	t.Mul(a.z, b.x)
	tx.Add(tx, t)

	e.x.Set(tx)
	e.y.Set(ty)
	e.z.Set(tz)
	return e
}

func (e *gfP6) Square(a *gfP6) *gfP6 { return e.Mul(a, a) }

// MulGFP2 sets e = a*b for b in Fp2.
func (e *gfP6) MulGFP2(a *gfP6, b *gfP2) *gfP6 {
	e.x.Mul(a.x, b)
	e.y.Mul(a.y, b)
	e.z.Mul(a.z, b)
	return e
}

// MulScalar sets e = a*b for b in Fp.
func (e *gfP6) MulScalar(a *gfP6, b *big.Int) *gfP6 {
	e.x.MulScalar(a.x, b)
	e.y.MulScalar(a.y, b)
	e.z.MulScalar(a.z, b)
	return e
}

// MulTau sets e = a*tau, shifting coefficients with tau^3 = xi.
func (e *gfP6) MulTau(a *gfP6) *gfP6 {
	tz := newGFp2().MulXi(a.x)
	ty := newGFp2().Set(a.z)
	tx := newGFp2().Set(a.y)
	e.x.Set(tx)
	e.y.Set(ty)
	e.z.Set(tz)
	return e
}

// Invert sets e = 1/a using the standard norm-based formula for cubic
// extensions. Writing a = c0 + c1*tau + c2*tau^2 (c0 = a.z, c1 = a.y,
// c2 = a.x):
//
//	t0 = c0^2 - xi*c1*c2
//	t1 = xi*c2^2 - c0*c1
//	t2 = c1^2 - c0*c2
//	F  = c0*t0 + xi*c1*t2 + xi*c2*t1
//	1/a = (t0 + t1*tau + t2*tau^2) / F
func (e *gfP6) Invert(a *gfP6) *gfP6 {
	t := newGFp2()

	t0 := newGFp2().Mul(a.y, a.x)
	t0.MulXi(t0)
	t.Square(a.z)
	t0.Sub(t, t0)

	t1 := newGFp2().Square(a.x)
	t1.MulXi(t1)
	t.Mul(a.z, a.y)
	t1.Sub(t1, t)

	t2 := newGFp2().Square(a.y)
	t.Mul(a.z, a.x)
	t2.Sub(t2, t)

	f := newGFp2().Mul(a.y, t2)
	f.MulXi(f)
	t.Mul(a.z, t0)
	f.Add(f, t)
	t.Mul(a.x, t1)
	t.MulXi(t)
	f.Add(f, t)

	f.Invert(f)
	e.z.Mul(t0, f)
	e.y.Mul(t1, f)
	e.x.Mul(t2, f)
	return e
}
