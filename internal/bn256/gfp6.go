package bn256

// gfP6 implements the degree-three extension Fp6 = Fp2[tau]/(tau^3 - xi).
// An element is x*tau^2 + y*tau + z, with the gfP2 coefficients held inline.
type gfP6 struct {
	x, y, z gfP2
}

func newGFp6() *gfP6 { return &gfP6{} }

func (e *gfP6) String() string {
	return "(" + e.x.String() + "tau^2 + " + e.y.String() + "tau + " + e.z.String() + ")"
}

func (e *gfP6) Set(a *gfP6) *gfP6 {
	*e = *a
	return e
}

func (e *gfP6) SetZero() *gfP6 {
	*e = gfP6{}
	return e
}

func (e *gfP6) SetOne() *gfP6 {
	e.x.SetZero()
	e.y.SetZero()
	e.z.SetOne()
	return e
}

func (e *gfP6) IsZero() bool { return e.x.IsZero() && e.y.IsZero() && e.z.IsZero() }

func (e *gfP6) IsOne() bool { return e.x.IsZero() && e.y.IsZero() && e.z.IsOne() }

func (e *gfP6) Equal(a *gfP6) bool { return *e == *a }

func (e *gfP6) Neg(a *gfP6) *gfP6 {
	e.x.Neg(&a.x)
	e.y.Neg(&a.y)
	e.z.Neg(&a.z)
	return e
}

// Frobenius sets e = a^p.
// tau^p = tau * xi^((p-1)/3) and tau^(2p) = tau^2 * xi^(2(p-1)/3), while the
// Fp2 coefficients are conjugated.
func (e *gfP6) Frobenius(a *gfP6) *gfP6 {
	e.x.Conjugate(&a.x)
	e.y.Conjugate(&a.y)
	e.z.Conjugate(&a.z)
	e.x.Mul(&e.x, xiTo2PMinus2Over3)
	e.y.Mul(&e.y, xiToPMinus1Over3)
	return e
}

// FrobeniusP2 sets e = a^(p^2). The coefficients of the p^2-power Frobenius
// lie in Fp, so no conjugation is involved.
func (e *gfP6) FrobeniusP2(a *gfP6) *gfP6 {
	e.x.MulScalar(&a.x, &xiTo2PSquaredMinus2Over3)
	e.y.MulScalar(&a.y, &xiToPSquaredMinus1Over3)
	e.z.Set(&a.z)
	return e
}

func (e *gfP6) Add(a, b *gfP6) *gfP6 {
	e.x.Add(&a.x, &b.x)
	e.y.Add(&a.y, &b.y)
	e.z.Add(&a.z, &b.z)
	return e
}

func (e *gfP6) Sub(a, b *gfP6) *gfP6 {
	e.x.Sub(&a.x, &b.x)
	e.y.Sub(&a.y, &b.y)
	e.z.Sub(&a.z, &b.z)
	return e
}

func (e *gfP6) Double(a *gfP6) *gfP6 {
	e.x.Double(&a.x)
	e.y.Double(&a.y)
	e.z.Double(&a.z)
	return e
}

// Mul sets e = a*b with tau^3 = xi reduction:
//
//	z' = az*bz + xi(ax*by + ay*bx)
//	y' = ay*bz + az*by + xi(ax*bx)
//	x' = ax*bz + ay*by + az*bx
//
// using three-way Karatsuba: the diagonal products v0 = az*bz, v1 = ay*by,
// v2 = ax*bx plus one multiplication per cross pair, six gfP2
// multiplications total instead of nine.
func (e *gfP6) Mul(a, b *gfP6) *gfP6 {
	var v0, v1, v2, t01, t02, t12, s, t gfP2

	v0.Mul(&a.z, &b.z)
	v1.Mul(&a.y, &b.y)
	v2.Mul(&a.x, &b.x)

	// t01 = az*by + ay*bz, t02 = az*bx + ax*bz, t12 = ay*bx + ax*by.
	s.Add(&a.z, &a.y)
	t.Add(&b.z, &b.y)
	t01.Mul(&s, &t)
	t01.Sub(&t01, &v0)
	t01.Sub(&t01, &v1)

	s.Add(&a.z, &a.x)
	t.Add(&b.z, &b.x)
	t02.Mul(&s, &t)
	t02.Sub(&t02, &v0)
	t02.Sub(&t02, &v2)

	s.Add(&a.y, &a.x)
	t.Add(&b.y, &b.x)
	t12.Mul(&s, &t)
	t12.Sub(&t12, &v1)
	t12.Sub(&t12, &v2)

	var tx, ty, tz gfP2
	tz.MulXi(&t12)
	tz.Add(&tz, &v0)

	ty.MulXi(&v2)
	ty.Add(&ty, &t01)

	tx.Add(&t02, &v1)

	e.x = tx
	e.y = ty
	e.z = tz
	return e
}

func (e *gfP6) Square(a *gfP6) *gfP6 { return e.Mul(a, a) }

// MulGFP2 sets e = a*b for b in Fp2.
func (e *gfP6) MulGFP2(a *gfP6, b *gfP2) *gfP6 {
	e.x.Mul(&a.x, b)
	e.y.Mul(&a.y, b)
	e.z.Mul(&a.z, b)
	return e
}

// MulScalar sets e = a*b for b in Fp.
func (e *gfP6) MulScalar(a *gfP6, b *gfP) *gfP6 {
	e.x.MulScalar(&a.x, b)
	e.y.MulScalar(&a.y, b)
	e.z.MulScalar(&a.z, b)
	return e
}

// MulTau sets e = a*tau, shifting coefficients with tau^3 = xi.
func (e *gfP6) MulTau(a *gfP6) *gfP6 {
	var tz gfP2
	tz.MulXi(&a.x)
	e.x, e.y, e.z = a.y, a.z, tz
	return e
}

// Invert sets e = 1/a using the standard norm-based formula for cubic
// extensions. Writing a = c0 + c1*tau + c2*tau^2 (c0 = a.z, c1 = a.y,
// c2 = a.x):
//
//	t0 = c0^2 - xi*c1*c2
//	t1 = xi*c2^2 - c0*c1
//	t2 = c1^2 - c0*c2
//	F  = c0*t0 + xi*c1*t2 + xi*c2*t1
//	1/a = (t0 + t1*tau + t2*tau^2) / F
func (e *gfP6) Invert(a *gfP6) *gfP6 {
	var t, t0, t1, t2, f gfP2

	t0.Mul(&a.y, &a.x)
	t0.MulXi(&t0)
	t.Square(&a.z)
	t0.Sub(&t, &t0)

	t1.Square(&a.x)
	t1.MulXi(&t1)
	t.Mul(&a.z, &a.y)
	t1.Sub(&t1, &t)

	t2.Square(&a.y)
	t.Mul(&a.z, &a.x)
	t2.Sub(&t2, &t)

	f.Mul(&a.y, &t2)
	f.MulXi(&f)
	t.Mul(&a.z, &t0)
	f.Add(&f, &t)
	t.Mul(&a.x, &t1)
	t.MulXi(&t)
	f.Add(&f, &t)

	f.Invert(&f)
	e.z.Mul(&t0, &f)
	e.y.Mul(&t1, &f)
	e.x.Mul(&t2, &f)
	return e
}
