package bn256

import (
	"crypto/rand"
	"math/big"
	"testing"
	"testing/quick"
)

func randGFp2(t *testing.T) *gfP2 {
	t.Helper()
	x, err := rand.Int(rand.Reader, P)
	if err != nil {
		t.Fatal(err)
	}
	y, err := rand.Int(rand.Reader, P)
	if err != nil {
		t.Fatal(err)
	}
	return newGFp2().SetBigs(x, y)
}

func randGFp6(t *testing.T) *gfP6 {
	t.Helper()
	return &gfP6{x: *randGFp2(t), y: *randGFp2(t), z: *randGFp2(t)}
}

func randGFp12(t *testing.T) *gfP12 {
	t.Helper()
	return &gfP12{x: *randGFp6(t), y: *randGFp6(t)}
}

func TestGFp2Axioms(t *testing.T) {
	for i := 0; i < 20; i++ {
		a, b, c := randGFp2(t), randGFp2(t), randGFp2(t)

		// Commutativity and associativity of multiplication.
		ab := newGFp2().Mul(a, b)
		ba := newGFp2().Mul(b, a)
		if !ab.Equal(ba) {
			t.Fatal("Fp2 mul not commutative")
		}
		abc1 := newGFp2().Mul(ab, c)
		bc := newGFp2().Mul(b, c)
		abc2 := newGFp2().Mul(a, bc)
		if !abc1.Equal(abc2) {
			t.Fatal("Fp2 mul not associative")
		}

		// Distributivity.
		lhs := newGFp2().Add(b, c)
		lhs.Mul(a, lhs)
		rhs := newGFp2().Add(newGFp2().Mul(a, b), newGFp2().Mul(a, c))
		if !lhs.Equal(rhs) {
			t.Fatal("Fp2 mul not distributive")
		}

		// Square consistency.
		sq := newGFp2().Square(a)
		mul := newGFp2().Mul(a, a)
		if !sq.Equal(mul) {
			t.Fatal("Fp2 square != mul")
		}

		// Inverse.
		if !a.IsZero() {
			inv := newGFp2().Invert(a)
			one := newGFp2().Mul(a, inv)
			if !one.IsOne() {
				t.Fatal("Fp2 a * 1/a != 1")
			}
		}

		// MulXi consistency with explicit Mul.
		viaMul := newGFp2().Mul(a, xi)
		viaXi := newGFp2().MulXi(a)
		if !viaMul.Equal(viaXi) {
			t.Fatal("MulXi inconsistent with Mul by xi")
		}
	}
}

func TestGFp6Axioms(t *testing.T) {
	for i := 0; i < 10; i++ {
		a, b, c := randGFp6(t), randGFp6(t), randGFp6(t)

		ab := newGFp6().Mul(a, b)
		ba := newGFp6().Mul(b, a)
		if !ab.Equal(ba) {
			t.Fatal("Fp6 mul not commutative")
		}
		abc1 := newGFp6().Mul(ab, c)
		abc2 := newGFp6().Mul(a, newGFp6().Mul(b, c))
		if !abc1.Equal(abc2) {
			t.Fatal("Fp6 mul not associative")
		}

		if !a.IsZero() {
			inv := newGFp6().Invert(a)
			if !newGFp6().Mul(a, inv).IsOne() {
				t.Fatal("Fp6 a * 1/a != 1")
			}
		}

		// tau^3 = xi: multiply by tau three times equals MulGFP2 by xi.
		t3 := newGFp6().MulTau(a)
		t3.MulTau(t3)
		t3.MulTau(t3)
		viaXi := newGFp6().MulGFP2(a, xi)
		if !t3.Equal(viaXi) {
			t.Fatal("tau^3 != xi in Fp6")
		}
	}
}

func TestGFp12Axioms(t *testing.T) {
	for i := 0; i < 5; i++ {
		a, b := randGFp12(t), randGFp12(t)

		ab := newGFp12().Mul(a, b)
		ba := newGFp12().Mul(b, a)
		if !ab.Equal(ba) {
			t.Fatal("Fp12 mul not commutative")
		}
		if !a.IsZero() {
			inv := newGFp12().Invert(a)
			if !newGFp12().Mul(a, inv).IsOne() {
				t.Fatal("Fp12 a * 1/a != 1")
			}
		}
	}
}

// TestFrobenius checks that the algebraic Frobenius maps agree with raising
// to the p-th power directly, on each level of the tower.
func TestFrobenius(t *testing.T) {
	a2 := randGFp2(t)
	direct := newGFp2().Exp(a2, P)
	alg := newGFp2().Conjugate(a2)
	if !direct.Equal(alg) {
		t.Fatal("Fp2 Frobenius (conjugate) != a^p")
	}

	a6 := randGFp6(t)
	d6 := gfp6Exp(a6, P)
	alg6 := newGFp6().Frobenius(a6)
	if !d6.Equal(alg6) {
		t.Fatal("Fp6 Frobenius != a^p")
	}
	p2 := new(big.Int).Mul(P, P)
	d6p2 := gfp6Exp(a6, p2)
	alg6p2 := newGFp6().FrobeniusP2(a6)
	if !d6p2.Equal(alg6p2) {
		t.Fatal("Fp6 FrobeniusP2 != a^(p^2)")
	}

	a12 := randGFp12(t)
	d12 := newGFp12().Exp(a12, P)
	alg12 := newGFp12().Frobenius(a12)
	if !d12.Equal(alg12) {
		t.Fatal("Fp12 Frobenius != a^p")
	}
	d12p2 := newGFp12().Exp(a12, p2)
	alg12p2 := newGFp12().FrobeniusP2(a12)
	if !d12p2.Equal(alg12p2) {
		t.Fatal("Fp12 FrobeniusP2 != a^(p^2)")
	}

	p6 := new(big.Int).Mul(p2, p2)
	p6.Mul(p6, p2)
	d12p6 := newGFp12().Exp(a12, p6)
	conj := newGFp12().Conjugate(a12)
	if !d12p6.Equal(conj) {
		t.Fatal("Fp12 conjugate != a^(p^6)")
	}
}

func gfp6Exp(a *gfP6, k *big.Int) *gfP6 {
	sum := newGFp6().SetOne()
	for i := k.BitLen() - 1; i >= 0; i-- {
		sum.Square(sum)
		if k.Bit(i) != 0 {
			sum.Mul(sum, a)
		}
	}
	return sum
}

func TestSqrtFp2(t *testing.T) {
	for i := 0; i < 20; i++ {
		a := randGFp2(t)
		sq := newGFp2().Square(a)
		r := sqrtFp2(sq)
		if r == nil {
			t.Fatal("sqrtFp2 failed on a known square")
		}
		rr := newGFp2().Square(r)
		if !rr.Equal(sq) {
			t.Fatal("sqrtFp2 returned a non-root")
		}
	}
}

func TestQuickFp2MulCommutes(t *testing.T) {
	f := func(ax, ay, bx, by int64) bool {
		a := newGFp2().SetInt64s(ax, ay)
		b := newGFp2().SetInt64s(bx, by)
		ab := newGFp2().Mul(a, b)
		ba := newGFp2().Mul(b, a)
		return ab.Equal(ba)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
