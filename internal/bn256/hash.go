package bn256

import (
	"crypto/sha256"
	"encoding/binary"
	"math/big"
)

// sqrtFp2 returns a square root of a in Fp2, or nil if a is a non-residue.
// It uses the classical "complex" method: with a = x*i + y and norm
// N = x^2 + y^2, a root c = cx*i + cy satisfies cy^2 = (y ± sqrt(N))/2 and
// cx = x / (2*cy).
func sqrtFp2(a *gfP2) *gfP2 {
	if a.IsZero() {
		return newGFp2()
	}
	if a.x.IsZero() {
		// a = y is a base-field element: either y is a residue, or
		// -y is (then sqrt = sqrt(-y) * i since i^2 = -1).
		var r gfP
		if r.Sqrt(&a.y) != nil {
			out := newGFp2()
			out.y.Set(&r)
			return out
		}
		var ny gfP
		gfpNeg(&ny, &a.y)
		if r.Sqrt(&ny) != nil {
			out := newGFp2()
			out.x.Set(&r)
			return out
		}
		return nil
	}

	var n, t, lambda gfP
	gfpMul(&n, &a.x, &a.x)
	gfpMul(&t, &a.y, &a.y)
	gfpAdd(&n, &n, &t)
	if lambda.Sqrt(&n) == nil {
		return nil
	}

	var two, twoInv gfP
	two.SetInt64(2)
	twoInv.Invert(&two)
	for _, sign := range []int{1, -1} {
		l := lambda
		if sign < 0 {
			gfpNeg(&l, &l)
		}
		var cy2, cy gfP
		gfpAdd(&cy2, &a.y, &l)
		gfpMul(&cy2, &cy2, &twoInv)
		if cy.Sqrt(&cy2) == nil || cy.IsZero() {
			continue
		}
		var cx gfP
		gfpDouble(&cx, &cy)
		cx.Invert(&cx)
		gfpMul(&cx, &cx, &a.x)
		cand := &gfP2{x: cx, y: cy}
		if newGFp2().Square(cand).Equal(a) {
			return cand
		}
	}
	return nil
}

// hashToFp maps arbitrary bytes to an Fp element by counter-mode SHA-256.
// Two 256-bit digests are concatenated and reduced mod p so the output bias
// is negligible (< 2^-250).
func hashToFp(data []byte, domain byte) *big.Int {
	var buf [2 * sha256.Size]byte
	h := sha256.New()
	h.Write([]byte{domain, 0})
	h.Write(data)
	h.Sum(buf[:0])
	h.Reset()
	h.Write([]byte{domain, 1})
	h.Write(data)
	h.Sum(buf[sha256.Size:sha256.Size])
	v := new(big.Int).SetBytes(buf[:])
	return v.Mod(v, P)
}

// HashToG1 deterministically maps data to a point of G1 by try-and-increment:
// x candidates are derived from SHA-256(counter || data) until x^3+3 is a
// square; the parity of the counter's first byte fixes the y sign. G1 has
// prime order equal to the full curve order, so no cofactor clearing is
// required.
func HashToG1(data []byte) *G1 {
	var ctr [4]byte
	for i := uint32(0); ; i++ {
		binary.BigEndian.PutUint32(ctr[:], i)
		var x, y2, y gfP
		x.SetBig(hashToFp(append(ctr[:], data...), 0x01))
		gfpMul(&y2, &x, &x)
		gfpMul(&y2, &y2, &x)
		gfpAdd(&y2, &y2, &gfpCurveB)
		if y.Sqrt(&y2) == nil {
			continue
		}
		// Normalize the root choice deterministically: pick the
		// lexicographically smaller of {y, p-y}.
		var ny gfP
		gfpNeg(&ny, &y)
		if y.Big().Cmp(ny.Big()) > 0 {
			y = ny
		}
		return &G1{p: newCurvePoint().SetAffine(&x, &y)}
	}
}

var (
	g1Gen *curvePoint // generator of G1: (1, 2)
	g2Gen *twistPoint // generator of the order-n subgroup of E'(Fp2)
)

// initGenerators derives the G1 and G2 generators. The G2 generator is found
// deterministically: walk x = j*i + 1 for j = 0, 1, 2, ... until x^3 + b' is
// a square on the twist, then clear the cofactor 2p - n. The result is
// validated to have exact order n.
func initGenerators() {
	var gx, gy gfP
	gx.SetInt64(1)
	gy.SetInt64(2)
	g1Gen = newCurvePoint().SetAffine(&gx, &gy)
	if !g1Gen.IsOnCurve() {
		panic("bn256: G1 generator not on curve")
	}
	chk := newCurvePoint().Mul(g1Gen, Order)
	if !chk.IsInfinity() {
		panic("bn256: G1 generator has wrong order")
	}

	for j := int64(0); ; j++ {
		x := newGFp2().SetInt64s(j, 1)
		y2 := newGFp2().Square(x)
		y2.Mul(y2, x)
		y2.Add(y2, twistB)
		y := sqrtFp2(y2)
		if y == nil {
			continue
		}
		cand := newTwistPoint().SetAffine(x, y)
		cand.Mul(cand, twistCofactor)
		if cand.IsInfinity() {
			continue
		}
		chk := newTwistPoint().Mul(cand, Order)
		if !chk.IsInfinity() {
			panic("bn256: twist cofactor clearing failed")
		}
		cand.MakeAffine()
		g2Gen = cand
		return
	}
}
