package bn256

import (
	"crypto/sha256"
	"encoding/binary"
	"math/big"
)

// sqrtFp returns a square root of a modulo p, or nil if a is a non-residue.
// p = 3 mod 4, so a^((p+1)/4) is a root whenever one exists.
func sqrtFp(a *big.Int) *big.Int {
	r := new(big.Int).Exp(a, pPlus1Over4, P)
	check := new(big.Int).Mul(r, r)
	modP(check)
	am := new(big.Int).Mod(a, P)
	if check.Cmp(am) != 0 {
		return nil
	}
	return r
}

// sqrtFp2 returns a square root of a in Fp2, or nil if a is a non-residue.
// It uses the classical "complex" method: with a = x*i + y and norm
// N = x^2 + y^2, a root c = cx*i + cy satisfies cy^2 = (y ± sqrt(N))/2 and
// cx = x / (2*cy).
func sqrtFp2(a *gfP2) *gfP2 {
	if a.IsZero() {
		return newGFp2()
	}
	if a.x.Sign() == 0 {
		// a = y is a base-field element: either y is a residue, or
		// -y is (then sqrt = sqrt(-y) * i since i^2 = -1).
		if r := sqrtFp(a.y); r != nil {
			return &gfP2{x: new(big.Int), y: r}
		}
		ny := new(big.Int).Neg(a.y)
		modP(ny)
		if r := sqrtFp(ny); r != nil {
			return &gfP2{x: r, y: new(big.Int)}
		}
		return nil
	}

	n := new(big.Int).Mul(a.x, a.x)
	t := new(big.Int).Mul(a.y, a.y)
	n.Add(n, t)
	modP(n)
	lambda := sqrtFp(n)
	if lambda == nil {
		return nil
	}

	twoInv := new(big.Int).ModInverse(big.NewInt(2), P)
	for _, sign := range []int{1, -1} {
		l := new(big.Int).Set(lambda)
		if sign < 0 {
			l.Neg(l)
		}
		cy2 := new(big.Int).Add(a.y, l)
		cy2.Mul(cy2, twoInv)
		modP(cy2)
		cy := sqrtFp(cy2)
		if cy == nil || cy.Sign() == 0 {
			continue
		}
		cx := new(big.Int).Lsh(cy, 1)
		cx.ModInverse(cx, P)
		cx.Mul(cx, a.x)
		modP(cx)
		cand := &gfP2{x: cx, y: cy}
		if newGFp2().Square(cand).Equal(a) {
			return cand
		}
	}
	return nil
}

// hashToFp maps arbitrary bytes to an Fp element by counter-mode SHA-256.
// Two 256-bit digests are concatenated and reduced mod p so the output bias
// is negligible (< 2^-250).
func hashToFp(data []byte, domain byte) *big.Int {
	var buf [2 * sha256.Size]byte
	h := sha256.New()
	h.Write([]byte{domain, 0})
	h.Write(data)
	h.Sum(buf[:0])
	h.Reset()
	h.Write([]byte{domain, 1})
	h.Write(data)
	h.Sum(buf[sha256.Size:sha256.Size])
	v := new(big.Int).SetBytes(buf[:])
	return v.Mod(v, P)
}

// HashToG1 deterministically maps data to a point of G1 by try-and-increment:
// x candidates are derived from SHA-256(counter || data) until x^3+3 is a
// square; the parity of the counter's first byte fixes the y sign. G1 has
// prime order equal to the full curve order, so no cofactor clearing is
// required.
func HashToG1(data []byte) *G1 {
	var ctr [4]byte
	for i := uint32(0); ; i++ {
		binary.BigEndian.PutUint32(ctr[:], i)
		x := hashToFp(append(ctr[:], data...), 0x01)
		y2 := new(big.Int).Mul(x, x)
		y2.Mul(y2, x)
		y2.Add(y2, curveB)
		modP(y2)
		y := sqrtFp(y2)
		if y == nil {
			continue
		}
		// Normalize the root choice deterministically: pick the
		// lexicographically smaller of {y, p-y} unless the counter
		// hash is odd.
		ny := new(big.Int).Sub(P, y)
		if y.Cmp(ny) > 0 {
			y = ny
		}
		p := &G1{p: newCurvePoint().SetAffine(x, y)}
		return p
	}
}

var (
	g1Gen *curvePoint // generator of G1: (1, 2)
	g2Gen *twistPoint // generator of the order-n subgroup of E'(Fp2)
)

// initGenerators derives the G1 and G2 generators. The G2 generator is found
// deterministically: walk x = j*i + 1 for j = 0, 1, 2, ... until x^3 + b' is
// a square on the twist, then clear the cofactor 2p - n. The result is
// validated to have exact order n.
func initGenerators() {
	g1Gen = newCurvePoint().SetAffine(big.NewInt(1), big.NewInt(2))
	if !g1Gen.IsOnCurve() {
		panic("bn256: G1 generator not on curve")
	}
	chk := newCurvePoint().Mul(g1Gen, Order)
	if !chk.IsInfinity() {
		panic("bn256: G1 generator has wrong order")
	}

	for j := int64(0); ; j++ {
		x := &gfP2{x: big.NewInt(j), y: big.NewInt(1)}
		y2 := newGFp2().Square(x)
		y2.Mul(y2, x)
		y2.Add(y2, twistB)
		y := sqrtFp2(y2)
		if y == nil {
			continue
		}
		cand := newTwistPoint().SetAffine(x, y)
		cand.Mul(cand, twistCofactor)
		if cand.IsInfinity() {
			continue
		}
		chk := newTwistPoint().Mul(cand, Order)
		if !chk.IsInfinity() {
			panic("bn256: twist cofactor clearing failed")
		}
		cand.MakeAffine()
		g2Gen = cand
		return
	}
}
