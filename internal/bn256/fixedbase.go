package bn256

import (
	"math/big"
	"sync"
)

// Fixed-base scalar multiplication of the G1 generator with an 8-bit
// windowed table: g1Table[w][d] = d * 2^(8w) * g1. A 254-bit scalar then
// costs at most 32 point additions instead of ~254 doublings plus ~127
// additions -- roughly a 10x speedup on the data owner's Setup, which
// performs one base multiplication per chunk (the Fig. 7 workload).
//
// The table (32 windows x 255 non-zero digits) is built lazily on first use
// so programs that never touch G1 base multiplications pay nothing.

const (
	fbWindowBits = 8
	fbWindows    = 32 // ceil(254 / 8)
	fbTableSize  = 1 << fbWindowBits
)

var (
	g1TableOnce sync.Once
	g1Table     [][]*curvePoint
)

func buildG1Table() {
	g1Table = make([][]*curvePoint, fbWindows)
	base := newCurvePoint().Set(g1Gen)
	for w := 0; w < fbWindows; w++ {
		row := make([]*curvePoint, fbTableSize)
		row[0] = newCurvePoint().SetInfinity()
		for d := 1; d < fbTableSize; d++ {
			row[d] = newCurvePoint().Add(row[d-1], base)
		}
		g1Table[w] = row
		// base <<= 8
		for i := 0; i < fbWindowBits; i++ {
			base.Double(base)
		}
	}
}

// mulBaseFixed computes k*g1 via the window table.
func mulBaseFixed(k *big.Int) *curvePoint {
	g1TableOnce.Do(buildG1Table)
	e := new(big.Int).Mod(k, Order)
	words := e.Bits()
	acc := newCurvePoint().SetInfinity()
	for w := 0; w < fbWindows; w++ {
		d := scalarDigit(words, w*fbWindowBits, fbWindowBits)
		if d != 0 {
			acc.Add(acc, g1Table[w][d])
		}
	}
	return acc
}
