// Package bn256 implements the 254-bit Barreto-Naehrig pairing-friendly
// elliptic curve known as alt_bn128 (the curve exposed by the Ethereum
// pairing precompiles and referenced by the paper as its BN256 instantiation),
// together with the optimal ate pairing e: G1 x G2 -> GT.
//
// The implementation is self-contained (standard library only). All derived
// constants -- the field prime, the group order, Frobenius coefficients,
// twist cofactor, the final-exponentiation hard part, and the Montgomery
// parameters of the base field -- are computed at package initialization
// from the single BN parameter u and validated by consistency checks, so a
// transcription error in any constant fails fast at startup instead of
// producing subtly wrong pairings.
//
// Base-field elements are fixed [4]uint64 limbs in Montgomery form (gfp.go),
// with Karatsuba multiplication through the Fp2/Fp6/Fp12 tower; scalars and
// exponents remain big.Int. The Miller loop runs in affine coordinates and
// group operations use Jacobian coordinates. Correctness is pinned three
// ways: differential tests of the limb arithmetic against math/big, field
// axioms and Frobenius identities at every tower level, and golden marshal
// vectors frozen from the original big.Int implementation (wire formats are
// byte-identical). See the package tests for the bilinearity,
// non-degeneracy and marshaling properties that pin the implementation
// down.
package bn256

import "math/big"

var (
	// u is the BN parameter. Every other constant derives from it:
	//	p = 36u^4 + 36u^3 + 24u^2 + 6u + 1
	//	n = 36u^4 + 36u^3 + 18u^2 + 6u + 1
	u = bigFromBase10("4965661367192848881")

	// P is the prime of the base field Fp.
	P *big.Int

	// Order is the order n of G1, G2 and GT (a prime).
	Order *big.Int

	// loopCount is 6u+2, the Miller loop length of the optimal ate pairing.
	loopCount *big.Int

	// twistCofactor is 2p - n, the cofactor of the order-n subgroup of the
	// sextic twist E'(Fp2).
	twistCofactor *big.Int

	// hardExponent is (p^4 - p^2 + 1)/n, the hard part of the final
	// exponentiation.
	hardExponent *big.Int

	// pPlus1Over4 is the exponent used for square roots in Fp (p = 3 mod 4).
	pPlus1Over4 *big.Int

	// curveB is the constant of E: y^2 = x^3 + 3 over Fp.
	curveB = big.NewInt(3)

	// xi is the sextic non-residue i+9 in Fp2 defining the tower
	// Fp6 = Fp2[tau]/(tau^3 - xi) and Fp12 = Fp6[omega]/(omega^2 - tau).
	xi *gfP2

	// twistB is 3/xi, the constant of the twist E': y^2 = x^3 + 3/xi.
	twistB *gfP2

	// Frobenius coefficients, all derived from xi at init.
	xiToPMinus1Over6         *gfP2 // xi^((p-1)/6)
	xiToPMinus1Over3         *gfP2 // xi^((p-1)/3)
	xiToPMinus1Over2         *gfP2 // xi^((p-1)/2)
	xiTo2PMinus2Over3        *gfP2 // xi^(2(p-1)/3)
	xiToPSquaredMinus1Over6  gfP   // xi^((p^2-1)/6), lies in Fp
	xiToPSquaredMinus1Over3  gfP   // xi^((p^2-1)/3), a primitive cube root of unity in Fp
	xiTo2PSquaredMinus2Over3 gfP   // its square, also in Fp
)

func bigFromBase10(s string) *big.Int {
	n, ok := new(big.Int).SetString(s, 10)
	if !ok {
		panic("bn256: invalid base-10 constant: " + s)
	}
	return n
}

// evalBNPoly evaluates 36u^4 + 36u^3 + c2*u^2 + 6u + 1 for the given
// quadratic coefficient c2 (24 yields the field prime, 18 the group order).
func evalBNPoly(u *big.Int, c2 int64) *big.Int {
	u2 := new(big.Int).Mul(u, u)
	u3 := new(big.Int).Mul(u2, u)
	u4 := new(big.Int).Mul(u3, u)

	r := new(big.Int).Mul(u4, big.NewInt(36))
	r.Add(r, new(big.Int).Mul(u3, big.NewInt(36)))
	r.Add(r, new(big.Int).Mul(u2, big.NewInt(c2)))
	r.Add(r, new(big.Int).Mul(u, big.NewInt(6)))
	r.Add(r, big.NewInt(1))
	return r
}

func init() {
	P = evalBNPoly(u, 24)
	Order = evalBNPoly(u, 18)

	if P.BitLen() != 254 || Order.BitLen() != 254 {
		panic("bn256: derived p or n has unexpected bit length")
	}
	if !P.ProbablyPrime(32) || !Order.ProbablyPrime(32) {
		panic("bn256: derived p or n is not prime")
	}
	if new(big.Int).Mod(P, big.NewInt(4)).Int64() != 3 {
		panic("bn256: p is not 3 mod 4")
	}

	pPlus1Over4 = new(big.Int).Add(P, big.NewInt(1))
	pPlus1Over4.Rsh(pPlus1Over4, 2)

	// The Montgomery-form base field underlies every derived constant
	// below, so its own constants come first.
	initGFp()

	loopCount = new(big.Int).Mul(u, big.NewInt(6))
	loopCount.Add(loopCount, big.NewInt(2))

	twistCofactor = new(big.Int).Lsh(P, 1)
	twistCofactor.Sub(twistCofactor, Order)

	// hardExponent = (p^4 - p^2 + 1)/n, which must divide exactly.
	p2 := new(big.Int).Mul(P, P)
	p4 := new(big.Int).Mul(p2, p2)
	h := new(big.Int).Sub(p4, p2)
	h.Add(h, big.NewInt(1))
	var rem big.Int
	hardExponent, _ = new(big.Int).QuoRem(h, Order, &rem)
	if rem.Sign() != 0 {
		panic("bn256: (p^4 - p^2 + 1) not divisible by n")
	}

	xi = newGFp2().SetInt64s(1, 9)
	twistB = newGFp2().Invert(xi)
	twistB.MulScalar(twistB, &gfpCurveB)

	// Frobenius coefficients.
	pMinus1 := new(big.Int).Sub(P, big.NewInt(1))
	xiToPMinus1Over6 = newGFp2().Exp(xi, new(big.Int).Div(pMinus1, big.NewInt(6)))
	xiToPMinus1Over3 = newGFp2().Exp(xi, new(big.Int).Div(pMinus1, big.NewInt(3)))
	xiToPMinus1Over2 = newGFp2().Exp(xi, new(big.Int).Div(pMinus1, big.NewInt(2)))
	xiTo2PMinus2Over3 = newGFp2().Square(xiToPMinus1Over3)

	p2Minus1 := new(big.Int).Sub(p2, big.NewInt(1))
	t := newGFp2().Exp(xi, new(big.Int).Div(p2Minus1, big.NewInt(6)))
	if !t.x.IsZero() {
		panic("bn256: xi^((p^2-1)/6) not in Fp")
	}
	xiToPSquaredMinus1Over6.Set(&t.y)

	t = newGFp2().Exp(xi, new(big.Int).Div(p2Minus1, big.NewInt(3)))
	if !t.x.IsZero() {
		panic("bn256: xi^((p^2-1)/3) not in Fp")
	}
	xiToPSquaredMinus1Over3.Set(&t.y)
	gfpMul(&xiTo2PSquaredMinus2Over3, &xiToPSquaredMinus1Over3, &xiToPSquaredMinus1Over3)

	// xi^((p^2-1)/2) must be -1 (xi is a quadratic non-residue in Fp2);
	// the optimal-ate adjustment step relies on it.
	t = newGFp2().Exp(xi, new(big.Int).Div(p2Minus1, big.NewInt(2)))
	var minusOne gfP
	gfpNeg(&minusOne, &rOne)
	if !t.x.IsZero() || !t.y.Equal(&minusOne) {
		panic("bn256: xi^((p^2-1)/2) != -1")
	}

	initGenerators()
}
