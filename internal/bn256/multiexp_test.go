package bn256

import (
	"crypto/rand"
	"math/big"
	"testing"
)

func TestMultiScalarMultMatchesNaive(t *testing.T) {
	for _, k := range []int{0, 1, 2, 17, 64} {
		points := make([]*G1, k)
		scalars := make([]*big.Int, k)
		naive := new(G1).SetInfinity()
		for i := 0; i < k; i++ {
			_, p, err := RandomG1(rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			s, _ := rand.Int(rand.Reader, Order)
			points[i] = p
			scalars[i] = s
			naive.Add(naive, new(G1).ScalarMult(p, s))
		}
		got := new(G1).MultiScalarMult(points, scalars)
		if !got.Equal(naive) {
			t.Fatalf("k=%d: MultiScalarMult disagrees with naive sum", k)
		}
	}
}

func TestMultiScalarMultEdgeCases(t *testing.T) {
	_, p, _ := RandomG1(rand.Reader)

	// All-zero scalars.
	got := new(G1).MultiScalarMult([]*G1{p, p}, []*big.Int{new(big.Int), new(big.Int)})
	if !got.IsInfinity() {
		t.Fatal("all-zero MSM is not infinity")
	}

	// Scalars above the group order must reduce.
	s, _ := rand.Int(rand.Reader, Order)
	big1 := new(big.Int).Add(s, Order)
	a := new(G1).MultiScalarMult([]*G1{p}, []*big.Int{s})
	b := new(G1).MultiScalarMult([]*G1{p}, []*big.Int{big1})
	if !a.Equal(b) {
		t.Fatal("MSM does not reduce scalars mod n")
	}
}

func TestMultiScalarMultPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	new(G1).MultiScalarMult([]*G1{}, []*big.Int{big.NewInt(1)})
}

func BenchmarkScalarMultG1(b *testing.B) {
	_, p, _ := RandomG1(rand.Reader)
	s, _ := rand.Int(rand.Reader, Order)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		new(G1).ScalarMult(p, s)
	}
}

func BenchmarkMultiScalarMult300(b *testing.B) {
	const k = 300
	points := make([]*G1, k)
	scalars := make([]*big.Int, k)
	for i := 0; i < k; i++ {
		_, points[i], _ = RandomG1(rand.Reader)
		scalars[i], _ = rand.Int(rand.Reader, Order)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		new(G1).MultiScalarMult(points, scalars)
	}
}

func BenchmarkPairing(b *testing.B) {
	_, p, _ := RandomG1(rand.Reader)
	_, q, _ := RandomG2(rand.Reader)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Pair(p, q)
	}
}
