#!/usr/bin/env bash
# metriclint.sh — static lint of every metric name registered in the tree.
#
# The convention: families are dsn_<subsystem>_<name> with a known
# subsystem, counters end in _total, and histograms carry a unit suffix.
# Registration calls keep the name literal on the call line (no computed
# names), which is what makes the convention mechanically checkable — and
# is itself enforced here by requiring that at least one registration is
# found.
set -euo pipefail
cd "$(dirname "$0")/.."

subsystems='sched|journal|spill|remote|settle|chain|repair'

# Extract (location, call kind, name) for every registration whose name
# starts with dsn_. Test files may register throwaway families (dsn_test_*)
# and are exempt.
regs=$(grep -rn --include='*.go' --exclude='*_test.go' \
         -oE '\.(Counter|CounterFunc|Gauge|GaugeFunc|Histogram)\("dsn_[a-z0-9_]+"' . |
       sed -E 's/\.(Counter|CounterFunc|Gauge|GaugeFunc|Histogram)\("/ \1 /; s/"$//')

fail=0
count=0
while read -r loc kind name; do
  [ -n "$name" ] || continue
  count=$((count + 1))
  if ! echo "$name" | grep -qE "^dsn_($subsystems)_[a-z0-9_]+$"; then
    echo "metriclint: $loc $name: unknown subsystem (want dsn_{${subsystems}}_<name>)"
    fail=1
  fi
  case "$kind" in
    Counter|CounterFunc)
      if ! echo "$name" | grep -qE '_total$'; then
        echo "metriclint: $loc $name: counters must end in _total"
        fail=1
      fi ;;
    Histogram)
      if ! echo "$name" | grep -qE '(_seconds|_bytes|_size|_depth)$'; then
        echo "metriclint: $loc $name: histograms must carry a unit suffix (_seconds/_bytes/_size/_depth)"
        fail=1
      fi ;;
  esac
done <<< "$regs"

if [ "$count" -eq 0 ]; then
  echo "metriclint: found no metric registrations — name extraction broke?"
  exit 1
fi
if [ "$fail" -ne 0 ]; then
  echo "metriclint: FAIL"
  exit 1
fi
echo "metriclint: PASS ($count registrations checked)"
