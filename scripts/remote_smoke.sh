#!/usr/bin/env bash
# remote_smoke.sh — end-to-end smoke test of the remote provider transport.
#
# Launches three `dsn-audit serve` provider processes, then:
#   1. runs a clean 2-round remote audit that must pass (exit 0), and
#   2. runs a 10-round remote audit during which one provider is killed
#      mid-run: the audit must finish (no hang), exit non-zero, and show
#      exactly two EXPIRED engagements and one ABORTED (slashed) one.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
bin="$workdir/dsn-audit"
go build -o "$bin" ./cmd/dsn-audit

pids=()
cleanup() {
  for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done
  rm -rf "$workdir"
}
trap cleanup EXIT

# Start three providers on kernel-chosen ports and collect their addresses.
# sp-a also serves /metrics, scraped mid-audit in phase 2.
addrs=()
for name in sp-a sp-b sp-c; do
  log="$workdir/$name.log"
  metrics_flag=""
  [ "$name" = sp-a ] && metrics_flag="-metrics 127.0.0.1:0"
  # shellcheck disable=SC2086
  "$bin" serve -addr 127.0.0.1:0 -name "$name" $metrics_flag >"$log" 2>&1 &
  pids+=($!)
  for _ in $(seq 1 100); do
    addr=$(grep -m1 '^LISTEN ' "$log" 2>/dev/null | cut -d' ' -f2 || true)
    [ -n "$addr" ] && break
    sleep 0.1
  done
  [ -n "$addr" ] || { echo "FAIL: $name never reported its address"; exit 1; }
  addrs+=("$addr")
done
metrics_addr=$(grep -m1 '^METRICS ' "$workdir/sp-a.log" | cut -d' ' -f2)
[ -n "$metrics_addr" ] || { echo "FAIL: sp-a never reported its metrics address"; exit 1; }
remote_list="${addrs[0]},${addrs[1]},${addrs[2]}"
echo "providers up: $remote_list"

# Phase 1: clean run must pass and exit 0.
if ! "$bin" -remote "$remote_list" -rounds 2 -seed smoke-clean \
    -call-timeout 30s >"$workdir/clean.log" 2>&1; then
  echo "FAIL: clean remote audit exited non-zero"
  tail -20 "$workdir/clean.log"
  exit 1
fi
grep -q 'audit passed' "$workdir/clean.log"
[ "$(grep -c 'state=EXPIRED' "$workdir/clean.log")" -eq 3 ]
echo "clean remote audit passed (3/3 engagements EXPIRED)"

# Phase 2: 10-round audit with provider 3 killed mid-run. A 1 MiB file
# makes every round's proving slow enough (three ~1700-point MSM proofs)
# that the kill below lands well before the 30 rounds settle, even on a
# fast many-core runner.
audit_log="$workdir/audit.log"
head -c 1048576 /dev/urandom >"$workdir/payload.bin"
"$bin" -remote "$remote_list" -file "$workdir/payload.bin" -rounds 10 \
  -seed smoke-kill -call-timeout 15s -retries 1 >"$audit_log" 2>&1 &
audit_pid=$!
# Kill sp-c as soon as the first settled round streams a progress line —
# the earliest moment that is provably "mid-run".
for _ in $(seq 1 1200); do
  if grep -q 'progress: ' "$audit_log" 2>/dev/null; then break; fi
  kill -0 "$audit_pid" 2>/dev/null || break
  sleep 0.05
done

# Mid-audit metrics scrape: with at least one round settled, sp-a has
# served challenges; its /metrics must be Prometheus-parseable with a
# nonzero Challenge request counter, and must expose the pre-declared
# driver-side families so one scrape config covers every process role.
scrape="$workdir/metrics.txt"
curl -sf "http://$metrics_addr/metrics" >"$scrape" || { echo "FAIL: /metrics scrape failed"; exit 1; }
grep -q '^# TYPE dsn_remote_requests_total counter' "$scrape" \
  || { echo "FAIL: /metrics missing dsn_remote_requests_total TYPE line"; cat "$scrape"; exit 1; }
challenges=$(grep '^dsn_remote_requests_total{type="Challenge"}' "$scrape" | awk '{print $2}')
[ -n "$challenges" ] && [ "${challenges%.*}" -gt 0 ] \
  || { echo "FAIL: mid-audit Challenge counter not positive: '$challenges'"; cat "$scrape"; exit 1; }
grep -q '^dsn_sched_ticks_total' "$scrape" \
  || { echo "FAIL: pre-declared scheduler family missing from provider /metrics"; cat "$scrape"; exit 1; }
echo "mid-audit metrics scrape ok ($challenges challenges served by sp-a)"

kill "${pids[2]}" 2>/dev/null || true
echo "killed provider sp-c mid-run"

rc=0
wait "$audit_pid" || rc=$?
echo "audit exit code: $rc"
tail -5 "$audit_log"

[ "$rc" -eq 1 ] || { echo "FAIL: expected exit 1 (failed rounds), got $rc"; cat "$audit_log"; exit 1; }
[ "$(grep -c 'state=EXPIRED' "$audit_log")" -eq 2 ] || { echo "FAIL: want 2 surviving engagements"; cat "$audit_log"; exit 1; }
[ "$(grep -c 'state=ABORTED' "$audit_log")" -eq 1 ] || { echo "FAIL: want 1 slashed engagement"; cat "$audit_log"; exit 1; }
grep -q 'slashed' "$audit_log" || { echo "FAIL: no slashing reported"; cat "$audit_log"; exit 1; }

echo "remote smoke passed: survivors expired, killed provider slashed, exit code gates"
