#!/usr/bin/env bash
# crash_smoke.sh — end-to-end crash-recovery smoke test of the durable
# audit CLI.
#
#   1. Runs a full durable audit (`dsn-audit -state A`) to completion and
#      captures its audit summary and balance deltas as the reference.
#   2. Starts the same audit against a second state dir with a per-tick
#      delay, kills it with SIGKILL once the journal has witnessed some
#      settled rounds, and resumes it with `dsn-audit resume -state B`.
#   3. The resumed run must exit 0 and print the same audit summary and
#      the same owner/provider balance deltas as the uninterrupted run.
#   4. A second resume of the finished state dir must be idempotent, and a
#      corrupted journal shard must be refused with exit code 3.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
bin="$workdir/dsn-audit"
go build -o "$bin" ./cmd/dsn-audit

cleanup() { rm -rf "$workdir"; }
trap cleanup EXIT

seed=crash-smoke
args=(-seed "$seed" -rounds 6 -k 40 -providers 12)
extract() { grep -E 'audit summary|balance delta' "$1"; }

# Phase 1: uninterrupted reference run.
"$bin" -state "$workdir/ref" "${args[@]}" >"$workdir/ref.log" 2>&1 \
  || { echo "FAIL: reference run exited $?"; cat "$workdir/ref.log"; exit 1; }
extract "$workdir/ref.log" >"$workdir/ref.summary"
echo "reference run:"
cat "$workdir/ref.summary"

# Phase 2: same audit, slowed down, killed mid-run.
"$bin" -state "$workdir/crash" "${args[@]}" -tick-delay 400ms \
  >"$workdir/crash.log" 2>&1 &
victim=$!
for _ in $(seq 1 200); do
  grep -q 'progress: 2 rounds settled' "$workdir/crash.log" 2>/dev/null && break
  sleep 0.1
done
grep -q 'progress: 2 rounds settled' "$workdir/crash.log" \
  || { echo "FAIL: victim never settled 2 rounds"; cat "$workdir/crash.log"; exit 1; }
kill -9 "$victim" 2>/dev/null || true
wait "$victim" 2>/dev/null || true
if grep -q 'audit passed' "$workdir/crash.log"; then
  echo "FAIL: victim finished before the kill landed; nothing was recovered"
  exit 1
fi
echo "victim killed after: $(grep -c '^progress:' "$workdir/crash.log") progress lines"

# Phase 3: resume must finish the audit and reproduce the reference.
"$bin" resume -state "$workdir/crash" >"$workdir/resume.log" 2>&1 \
  || { echo "FAIL: resume exited $?"; cat "$workdir/resume.log"; exit 1; }
grep -E 'replayed|recovered' "$workdir/resume.log"
extract "$workdir/resume.log" >"$workdir/resume.summary"
if ! diff -u "$workdir/ref.summary" "$workdir/resume.summary"; then
  echo "FAIL: resumed outcome differs from the uninterrupted run"
  exit 1
fi
echo "resume reproduced the reference summary and balances"

# Phase 4a: resuming the now-finished state dir is idempotent.
"$bin" resume -state "$workdir/crash" >"$workdir/resume2.log" 2>&1 \
  || { echo "FAIL: idempotent re-resume exited $?"; cat "$workdir/resume2.log"; exit 1; }
extract "$workdir/resume2.log" >"$workdir/resume2.summary"
diff -u "$workdir/ref.summary" "$workdir/resume2.summary" \
  || { echo "FAIL: re-resume changed the outcome"; exit 1; }

# Phase 4b: a flipped byte mid-journal must be refused with exit code 3.
shard=$(for f in "$workdir/crash/journal/"journal-*.log; do
  [ "$(wc -c <"$f")" -gt 40 ] && { echo "$f"; break; }
done)
byte=$(od -An -tu1 -j9 -N1 "$shard" | tr -d ' ')
printf "$(printf '\\%03o' $((byte ^ 0x40)))" \
  | dd of="$shard" bs=1 seek=9 count=1 conv=notrunc 2>/dev/null
rc=0
"$bin" resume -state "$workdir/crash" >"$workdir/corrupt.log" 2>&1 || rc=$?
if [ "$rc" -ne 3 ]; then
  echo "FAIL: corrupt journal exited $rc, want 3"
  cat "$workdir/corrupt.log"
  exit 1
fi
echo "corrupt journal refused with exit 3"

echo "PASS: crash smoke"
